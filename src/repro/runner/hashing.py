"""Canonical, cross-process-stable digests of experiment configurations.

The result cache keys each run by a BLAKE2b digest of its full
configuration.  Like :func:`repro.sim.rng.derive_seed`, every value is
serialized with an explicit type tag and length framing, so the digest is a
pure function of the *values*: stable across processes, Python versions,
and dict insertion orders (none of which is true of ``hash()`` or
``repr()``).  Two configs collide only if they would produce the same run.

Supported value types: ``None``, ``bool``, ``int``, ``float``, ``str``,
``bytes``, tuples/lists, dicts, and (possibly nested) dataclasses — which
covers :class:`~repro.sim.network.SimConfig` and everything the experiment
grids put in their override tables.  Anything else raises ``TypeError``
rather than silently hashing an unstable representation.
"""

from __future__ import annotations

import dataclasses
import hashlib
import struct
from typing import Any

#: Bump to invalidate every cached result at once (e.g. after a simulator
#: change that alters outputs without changing any config value).
#: 2: estimator reboot detection resets the PRR history (stale sequence
#: numbers no longer inflate PRR), changing results for any config.
#: 3: SimConfig grew the ``medium`` backend selector; digests of configs
#: hashed as dataclasses change, and the fast backend means one config no
#: longer implies one bitstream for medium="fast" runs.
#: 4: SimConfig grew the live-telemetry selectors (``telemetry_period_s``,
#: ``telemetry_path``, ``telemetry_per_node``) and CollectionResult grew
#: ``resources``; both change config digests and pickled payload shapes.
#: 5: SimConfig grew ``mobility`` (preset name or MobilityConfig JSON
#: round-trip) — config digests change shape, and mobile fast-medium runs
#: exercise incremental structural maintenance absent from v4 payloads.
#: 6: SimConfig grew ``white_bit_threshold`` (the campaign-tunable
#: white-bit knob) and campaign SimulationSpec/SweepSpec digests joined
#: the schema; cached payloads gained SimulationResult objects.
CACHE_SCHEMA_VERSION = 6


def _frame(raw: bytes) -> bytes:
    """Length-prefix ``raw`` so concatenated encodings cannot alias."""
    return struct.pack("<I", len(raw)) + raw


def canonical_bytes(value: Any) -> bytes:
    """Deterministic byte encoding of ``value`` (see module docstring)."""
    # bool before int: True would otherwise encode identically to 1.
    if value is None:
        return b"n"
    if isinstance(value, bool):
        return b"b1" if value else b"b0"
    if isinstance(value, int):
        return b"i" + _frame(str(value).encode("ascii"))
    if isinstance(value, float):
        return b"f" + struct.pack("<d", value)
    if isinstance(value, str):
        return b"s" + _frame(value.encode("utf-8"))
    if isinstance(value, bytes):
        return b"y" + _frame(value)
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        cls = type(value)
        body = b"".join(
            _frame(canonical_bytes(f.name) + canonical_bytes(getattr(value, f.name)))
            for f in dataclasses.fields(value)
        )
        return b"D" + _frame(f"{cls.__module__}.{cls.__qualname__}".encode("utf-8")) + _frame(body)
    if isinstance(value, (tuple, list)):
        tag = b"t" if isinstance(value, tuple) else b"l"
        return tag + struct.pack("<I", len(value)) + b"".join(
            _frame(canonical_bytes(v)) for v in value
        )
    if isinstance(value, dict):
        items = sorted(
            (canonical_bytes(k), canonical_bytes(v)) for k, v in value.items()
        )
        return b"d" + struct.pack("<I", len(items)) + b"".join(
            _frame(k) + _frame(v) for k, v in items
        )
    raise TypeError(
        f"cannot canonically encode {type(value).__qualname__!r}; "
        "use plain data or (nested) dataclasses in experiment configs"
    )


def config_digest(value: Any, schema_version: int = CACHE_SCHEMA_VERSION) -> str:
    """Hex digest (128-bit BLAKE2b) of ``value``'s canonical encoding."""
    h = hashlib.blake2b(digest_size=16)
    h.update(_frame(str(schema_version).encode("ascii")))
    h.update(canonical_bytes(value))
    return h.hexdigest()
