"""On-disk result cache keyed by canonical config digests.

Every run is a pure function of its configuration (``RngManager`` makes the
whole simulation deterministic in the master seed), so results can be
memoized on disk: re-running a sweep only executes changed cells.

Layout: ``<root>/<digest[:2]>/<digest>.pkl`` — one pickle per run, written
atomically (temp file + ``os.replace``) so a killed sweep never leaves a
truncated entry behind.  The default root is ``.repro-cache`` in the
working directory, overridable with ``REPRO_CACHE_DIR``.  To invalidate:
delete the directory (``python -m repro.runner --clear-cache`` does this),
or bump :data:`repro.runner.hashing.CACHE_SCHEMA_VERSION` after simulator
changes that alter results without changing any config value.
"""

from __future__ import annotations

import os
import pickle
import tempfile
from pathlib import Path
from typing import Any, Union


#: Sentinel distinguishing "no cached value" from a cached ``None``.
MISS = object()

#: Default cache root (relative, so each working tree gets its own cache).
DEFAULT_CACHE_DIR = ".repro-cache"


def cache_dir_from_env() -> Path:
    """The cache root named by ``REPRO_CACHE_DIR``, or the default."""
    return Path(os.environ.get("REPRO_CACHE_DIR") or DEFAULT_CACHE_DIR)


class ResultCache:
    """Pickle-per-digest store for experiment results."""

    def __init__(self, root: Union[str, Path, None] = None) -> None:
        self.root = Path(root) if root is not None else cache_dir_from_env()

    @classmethod
    def default(cls) -> "ResultCache":
        return cls(cache_dir_from_env())

    def path_for(self, digest: str) -> Path:
        return self.root / digest[:2] / f"{digest}.pkl"

    def get(self, digest: str) -> Any:
        """The cached result for ``digest``, or :data:`MISS`.

        A corrupt or unreadable entry (interrupted write from an older,
        non-atomic tool; unpicklable class after a refactor) counts as a
        miss — the run simply re-executes and overwrites it.
        """
        path = self.path_for(digest)
        try:
            with path.open("rb") as fh:
                return pickle.load(fh)
        except FileNotFoundError:
            return MISS
        except Exception:
            return MISS

    def __contains__(self, digest: str) -> bool:
        """True only for entries that actually *load*.

        Membership must agree with :meth:`get`: an entry whose write was
        torn mid-crash exists on disk but unpickles to garbage, and a
        path-existence check would report it present while ``get`` treats
        it as a miss — a resumed sweep would then skip the run *and* have
        no result for it.  Loading the entry makes "present" mean
        "recoverable".
        """
        return self.get(digest) is not MISS

    def put(self, digest: str, result: Any) -> None:
        path = self.path_for(digest)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                pickle.dump(result, fh, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def clear(self) -> int:
        """Delete every cached entry; returns the number removed."""
        removed = 0
        if not self.root.exists():
            return 0
        for path in self.root.glob("*/*.pkl"):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed

    def __len__(self) -> int:
        if not self.root.exists():
            return 0
        return sum(1 for _ in self.root.glob("*/*.pkl"))
