"""Process-pool experiment runner with caching and crash isolation.

Every simulator run is a pure function of its configuration, so a sweep is
embarrassingly parallel and perfectly cacheable.  :class:`ExperimentRunner`
takes a list of :class:`Task`\\ s (a picklable top-level function plus a
canonically-hashable argument), answers what it can from the on-disk
:class:`~repro.runner.cache.ResultCache`, and fans the misses out over a
``ProcessPoolExecutor``:

* **chunked submission** — at most ``workers × 4`` runs are in flight at a
  time, so a 10 000-cell sweep does not materialize 10 000 pickled configs
  and results at once;
* **per-run timeout** — enforced *inside* the worker with ``SIGALRM``, so a
  wedged run dies on its own without poisoning the pool;
* **crash isolation** — a run that raises (or times out) is recorded as a
  :class:`RunFailure` and the sweep continues; if a worker process dies
  outright the pool is rebuilt and the remaining runs proceed.  Failures
  surface at the *end* of the sweep as a :class:`RunnerError` (or as
  ``None`` results with ``strict=False``).

With ``workers <= 1`` tasks execute serially in-process — the runner is
then behaviourally identical to the old serial loops (plus caching), which
the equivalence test in ``tests/runner/`` pins down.
"""

from __future__ import annotations

import os
import signal
import sys
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.runner.cache import MISS, ResultCache

from repro.runner.hashing import config_digest


class RunTimeout(Exception):
    """Raised inside a worker when a run exceeds its time budget."""


def _on_alarm(signum, frame):  # pragma: no cover - fires only on timeout
    raise RunTimeout()


def _call_with_timeout(
    fn: Callable[[Any], Any],
    arg: Any,
    timeout_s: Optional[float],
    cache_info: Optional[Tuple[str, str]] = None,
) -> Any:
    """Worker entry point: run ``fn(arg)`` under an optional SIGALRM budget.

    Also captures the run's wall/CPU/max-RSS deltas and attaches them to
    the result when it has a ``resources`` slot (``CollectionResult`` does)
    — measured *inside* the worker process, so pool runs report the CPU
    that actually executed them.

    When ``cache_info`` (``(cache_root, digest)``) is given, the completed
    result is written to the on-disk cache *here*, before it travels back
    to the parent.  That makes every completed run durable the moment it
    finishes: a sweep killed while results are in flight — the campaign
    queue's interruption path — loses nothing, and a resume replays those
    runs as cache hits instead of re-executing them.
    """
    from repro.obs.resources import ResourceProbe, attach_resources

    use_alarm = bool(timeout_s) and hasattr(signal, "SIGALRM")
    if use_alarm:
        previous = signal.signal(signal.SIGALRM, _on_alarm)
        signal.setitimer(signal.ITIMER_REAL, timeout_s)
    probe = ResourceProbe()
    try:
        result = fn(arg)
    finally:
        if use_alarm:
            signal.setitimer(signal.ITIMER_REAL, 0.0)
            signal.signal(signal.SIGALRM, previous)
    attach_resources(result, probe.stop())
    if cache_info is not None:
        root, digest = cache_info
        ResultCache(root).put(digest, result)
    return result


@dataclass(frozen=True)
class Task:
    """One unit of work: ``fn(arg)`` with a cache identity.

    ``fn`` must be a module-level function (pickled by reference for the
    worker processes) and ``arg`` must be canonically hashable — plain data
    or frozen dataclasses.  The cache key covers both, so two figures
    sharing the exact same run (e.g. Figures 7 and 8) deduplicate.
    """

    fn: Callable[[Any], Any]
    arg: Any
    label: str = ""

    def digest(self) -> str:
        return config_digest((self.fn.__module__, self.fn.__qualname__, self.arg))

    def describe(self) -> str:
        return self.label or f"{self.fn.__qualname__}({self.arg!r})"


@dataclass
class RunFailure:
    """One run that raised, timed out, or lost its worker."""

    label: str
    digest: str
    error: str


class RunnerError(RuntimeError):
    """Raised after a sweep completes when some runs failed (strict mode)."""

    def __init__(self, failures: List[RunFailure]):
        self.failures = failures
        lines = "\n".join(f"  - {f.label}: {f.error}" for f in failures[:20])
        more = "" if len(failures) <= 20 else f"\n  … and {len(failures) - 20} more"
        super().__init__(f"{len(failures)} run(s) failed:\n{lines}{more}")


@dataclass
class RunnerStats:
    """Progress/throughput accounting for one sweep."""

    total: int = 0
    executed: int = 0
    cache_hits: int = 0
    failures: List[RunFailure] = field(default_factory=list)
    #: Simulator events executed by the runs (from ``CollectionResult.events_run``).
    events_run: int = 0
    wall_s: float = 0.0
    #: Merged engine profile across runs that carried one
    #: (``SimConfig(profile_events=True)``); see ``repro.obs.profile``.
    profile: Optional[Dict[str, object]] = None
    #: Aggregated run resources (``repro.obs.resources`` keys): CPU and
    #: wall seconds add across runs, ``max_rss_kb`` takes the max.
    resources: Dict[str, float] = field(default_factory=dict)

    @property
    def completed(self) -> int:
        return self.executed + self.cache_hits + len(self.failures)

    @property
    def hit_rate(self) -> float:
        done = self.completed
        return self.cache_hits / done if done else 0.0

    def runs_per_s(self) -> float:
        return self.completed / self.wall_s if self.wall_s > 0 else 0.0

    def events_per_s(self) -> float:
        return self.events_run / self.wall_s if self.wall_s > 0 else 0.0

    def absorb_profile(self, profile: Optional[Dict[str, object]]) -> None:
        """Fold one run's (or batch's) engine profile into this stats object."""
        if not profile:
            return
        from repro.obs.profile import merge_profiles

        runs = sum(int(p.get("runs", 1)) for p in (self.profile, profile) if p)
        self.profile = merge_profiles([self.profile, profile])
        if self.profile is not None:
            self.profile["runs"] = runs

    def profile_report(self, limit: int = 10) -> str:
        """Terminal-friendly where-does-the-time-go table for the sweep."""
        p = self.profile
        if not p:
            return "[profile] no profile data (runs need profile_events=True)"
        wall = float(p.get("wall_s", 0.0))
        lines = [
            f"[profile] {p.get('events', 0)} events over {p.get('runs', 1)} run(s), "
            f"{wall:.2f}s in-loop ({float(p.get('events_per_s', 0.0)) / 1000:.0f}k events/s)"
        ]
        by_kind = list(p.get("by_kind", {}).items())
        for kind, row in by_kind[:limit]:
            share = row["wall_s"] / wall * 100 if wall > 0 else 0.0
            lines.append(
                f"  {kind:<40} {row['count']:>9} ev  {row['wall_s']:7.3f}s  {share:5.1f}%"
            )
        if len(by_kind) > limit:
            lines.append(f"  … and {len(by_kind) - limit} more kinds")
        return "\n".join(lines)

    def absorb_resources(self, resources: Optional[Dict[str, Any]]) -> None:
        """Fold one run's (or batch's) resource deltas into this stats object."""
        if not resources:
            return
        from repro.obs.resources import merge_resources

        merge_resources(self.resources, resources)

    def summary(self) -> str:
        parts = [
            f"{self.completed}/{self.total} runs",
            f"{self.cache_hits} cached ({self.hit_rate * 100:.0f}%)",
            f"{self.runs_per_s():.2f} runs/s",
            f"{self.events_per_s() / 1000:.0f}k events/s",
        ]
        if self.resources:
            from repro.obs.resources import format_resources

            parts.append(format_resources(self.resources))
        if self.failures:
            parts.append(f"{len(self.failures)} FAILED")
        return "[runner] " + ", ".join(parts) + f", {self.wall_s:.1f}s wall"


class ExperimentRunner:
    """Fan experiment tasks out across processes, memoizing results on disk.

    Parameters
    ----------
    workers:
        Process count; ``None`` or ``<= 1`` runs serially in-process.
    cache:
        A :class:`ResultCache`, ``True`` for the default location
        (``REPRO_CACHE_DIR`` or ``.repro-cache``), or ``None``/``False``
        to disable caching.
    timeout_s:
        Per-run wall-clock budget, enforced in the worker via ``SIGALRM``.
    chunk_size:
        Maximum in-flight submissions (default ``workers × 4``).
    progress:
        When true, print throughput lines to stderr (≤ 1/s).
    strict:
        Raise :class:`RunnerError` after the sweep if any run failed;
        with ``strict=False`` failed slots come back as ``None``.
    telemetry:
        Optional :class:`~repro.obs.stream.TelemetrySink`: the runner
        emits sweep-scoped stream records (``sweep-start`` / one
        ``run-result`` per task / ``sweep-end``) so a tail can follow
        sweep progress live.  The sink is *not* closed by the runner.
    """

    def __init__(
        self,
        workers: Optional[int] = None,
        cache: Any = None,
        timeout_s: Optional[float] = None,
        chunk_size: Optional[int] = None,
        progress: bool = False,
        strict: bool = True,
        telemetry: Any = None,
    ) -> None:
        self.workers = int(workers) if workers else 1
        if cache is True:
            cache = ResultCache.default()
        elif cache is False:
            cache = None
        # Explicit identity checks: an *empty* ResultCache is falsy (len 0)
        # and `cache or None` would silently drop it.
        self.cache: Optional[ResultCache] = cache
        self.timeout_s = timeout_s
        self.chunk_size = chunk_size or max(self.workers * 4, 4)
        self.progress = progress
        self.strict = strict
        #: Stats for the most recent ``run()`` batch.
        self.stats = RunnerStats()
        #: Stats accumulated across every batch this runner has executed.
        self.totals = RunnerStats()
        self.telemetry = telemetry
        self._telemetry_seq = 0
        self._last_report = 0.0

    def _emit_telemetry(self, kind: str, **fields: Any) -> None:
        """Emit one sweep-scoped stream record (``t`` is null: wall time)."""
        if self.telemetry is None:
            return
        record: Dict[str, Any] = {"rec": kind, "seq": self._telemetry_seq, "t": None}
        record.update(fields)
        self._telemetry_seq += 1
        self.telemetry.emit(record)

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def run(self, tasks: Sequence[Task]) -> List[Any]:
        """Execute ``tasks`` and return their results in submission order.

        Duplicate tasks (same digest) execute once.  Failed runs occupy
        their slot with ``None``; in strict mode (the default) the sweep
        still runs to completion, then raises :class:`RunnerError`.
        """
        t0 = time.monotonic()
        stats = RunnerStats(total=len(tasks))
        self.stats = stats
        self._last_report = 0.0

        digests = [task.digest() for task in tasks]
        outcomes: Dict[str, Any] = {}
        failed: Dict[str, RunFailure] = {}
        self._emit_telemetry("sweep-start", total=len(tasks))

        # Cache pass + in-batch dedup: `todo` keeps first occurrence order.
        todo: List[Tuple[Task, str]] = []
        seen = set()
        for task, digest in zip(tasks, digests):
            if digest in seen:
                continue
            seen.add(digest)
            if self.cache is not None:
                hit = self.cache.get(digest)
                if hit is not MISS:
                    outcomes[digest] = hit
                    stats.cache_hits += 1
                    self._emit_telemetry(
                        "run-result", label=task.describe(), digest=digest,
                        status="cached",
                    )
                    continue
            todo.append((task, digest))
        self._report(stats, t0)

        if todo:
            if self.workers <= 1:
                self._run_serial(todo, outcomes, failed, stats, t0)
            else:
                self._run_pool(todo, outcomes, failed, stats, t0)

        stats.wall_s = time.monotonic() - t0
        self._report(stats, t0, force=True)
        self.totals.total += stats.total
        self.totals.executed += stats.executed
        self.totals.cache_hits += stats.cache_hits
        self.totals.failures.extend(stats.failures)
        self.totals.events_run += stats.events_run
        self.totals.wall_s += stats.wall_s
        self.totals.absorb_profile(stats.profile)
        self.totals.absorb_resources(stats.resources)
        self._emit_telemetry(
            "sweep-end",
            executed=stats.executed,
            cache_hits=stats.cache_hits,
            failures=len(stats.failures),
            wall_s=stats.wall_s,
            cpu_s=stats.resources.get("cpu_s", 0.0),
            max_rss_kb=stats.resources.get("max_rss_kb", 0.0),
        )
        if failed and self.strict:
            raise RunnerError(list(failed.values()))
        return [outcomes.get(d) for d in digests]

    # ------------------------------------------------------------------
    # Execution strategies
    # ------------------------------------------------------------------
    def _record_ok(self, task: Task, digest: str, result: Any, stats: RunnerStats) -> None:
        stats.executed += 1
        stats.events_run += int(getattr(result, "events_run", 0) or 0)
        stats.absorb_profile(getattr(result, "profile", None))
        resources = getattr(result, "resources", None)
        stats.absorb_resources(resources)
        extra: Dict[str, Any] = {}
        if resources:
            extra["resources"] = dict(resources)
        # No cache.put here: the worker already persisted the result before
        # returning it (see _call_with_timeout), so completions are durable
        # even if telemetry below — the campaign interruption point — raises.
        self._emit_telemetry(
            "run-result", label=task.describe(), digest=digest, status="ok",
            events_run=int(getattr(result, "events_run", 0) or 0), **extra,
        )

    def _cache_info(self, digest: str) -> Optional[Tuple[str, str]]:
        """Worker-side durable-write instructions for one task (picklable)."""
        if self.cache is None:
            return None
        return (str(self.cache.root), digest)

    def _run_serial(self, todo, outcomes, failed, stats, t0) -> None:
        for task, digest in todo:
            try:
                result = _call_with_timeout(
                    task.fn, task.arg, self.timeout_s, self._cache_info(digest)
                )
            except Exception as exc:
                failed[digest] = self._failure(task, digest, exc, stats)
            else:
                outcomes[digest] = result
                self._record_ok(task, digest, result, stats)
            self._report(stats, t0)

    def _run_pool(self, todo, outcomes, failed, stats, t0) -> None:
        remaining = list(todo)
        while remaining:
            remaining = self._pool_round(remaining, outcomes, failed, stats, t0)

    def _pool_round(self, todo, outcomes, failed, stats, t0) -> List[Tuple[Task, str]]:
        """One pool lifetime; returns tasks left unsubmitted if it breaks."""
        queue = iter(todo)
        submitted = 0
        in_flight: Dict[Any, Tuple[Task, str]] = {}
        with ProcessPoolExecutor(max_workers=self.workers) as pool:

            def top_up() -> None:
                nonlocal submitted
                while len(in_flight) < self.chunk_size and submitted < len(todo):
                    task, digest = todo[submitted]
                    submitted += 1
                    future = pool.submit(
                        _call_with_timeout, task.fn, task.arg, self.timeout_s,
                        self._cache_info(digest),
                    )
                    in_flight[future] = (task, digest)

            top_up()
            while in_flight:
                done, _ = wait(list(in_flight), return_when=FIRST_COMPLETED)
                broken = False
                for future in done:
                    task, digest = in_flight.pop(future)
                    try:
                        result = future.result()
                    except BrokenProcessPool as exc:
                        broken = True
                        failed[digest] = self._failure(task, digest, exc, stats)
                    except Exception as exc:
                        failed[digest] = self._failure(task, digest, exc, stats)
                    else:
                        outcomes[digest] = result
                        self._record_ok(task, digest, result, stats)
                    self._report(stats, t0)
                if broken:
                    # The pool is dead: everything still in flight fails with
                    # it, but unsubmitted runs continue in a fresh pool.
                    for future, (task, digest) in in_flight.items():
                        failed[digest] = self._failure(
                            task, digest, RuntimeError("worker pool died"), stats
                        )
                    self._report(stats, t0)
                    return todo[submitted:]
                top_up()
        return []

    def _failure(self, task: Task, digest: str, exc: BaseException, stats: RunnerStats) -> RunFailure:
        if isinstance(exc, RunTimeout):
            message = f"timed out after {self.timeout_s}s"
        else:
            message = f"{type(exc).__name__}: {exc}"
        failure = RunFailure(label=task.describe(), digest=digest, error=message)
        stats.failures.append(failure)
        self._emit_telemetry(
            "run-result", label=failure.label, digest=digest, status="failed",
            error=message,
        )
        return failure

    # ------------------------------------------------------------------
    # Progress
    # ------------------------------------------------------------------
    def _report(self, stats: RunnerStats, t0: float, force: bool = False) -> None:
        if not self.progress:
            return
        now = time.monotonic()
        if not force and now - self._last_report < 1.0:
            return
        self._last_report = now
        stats.wall_s = now - t0
        print(stats.summary(), file=sys.stderr, flush=True)


def default_runner() -> ExperimentRunner:
    """Runner configured from the environment.

    ``REPRO_WORKERS`` sets the process count (default 1 = serial, the
    historical behaviour) and ``REPRO_CACHE`` enables the on-disk cache
    (any non-empty value other than ``0``; location from
    ``REPRO_CACHE_DIR`` or ``.repro-cache``).
    """
    workers = int(os.environ.get("REPRO_WORKERS", "1") or "1")
    cache_flag = os.environ.get("REPRO_CACHE", "")
    cache = ResultCache.default() if cache_flag not in ("", "0", "off", "false") else None
    return ExperimentRunner(workers=workers, cache=cache)
