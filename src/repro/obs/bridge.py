"""Lift a finished network's per-component counters into one registry.

Every layer keeps its counters as cheap dataclass fields (``MacStats``,
``EstimatorStats``, ``RoutingStats``, ...) so the hot path never pays for
observability.  :func:`network_metrics` walks a
:class:`~repro.sim.network.CollectionNetwork` after (or during) a run and
registers every counter under its canonical ``layer.component.event`` name
with a ``node`` label, plus the network-wide medium and engine counters.

The resulting :class:`~repro.obs.metrics.MetricsRegistry` snapshots to a
flat dict (``CollectionResult.metrics`` when ``collect_metrics=True``) and
merges across runs for sweep-level aggregation.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.obs.metrics import MetricsRegistry

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.network import CollectionNetwork


def _node_stats_objects(node):
    """Yield every per-node stats dataclass that knows ``register_into``."""
    yield node.mac.stats
    if node.estimator is not None:
        yield node.estimator.stats
    protocol = node.protocol
    routing = getattr(protocol, "routing", None)
    if routing is not None:
        yield routing.stats
    forwarding = getattr(protocol, "forwarding", None)
    if forwarding is not None:
        yield forwarding.stats
    # Monolithic stacks (MultiHopLQI) keep one stats object on the protocol.
    stats = getattr(protocol, "stats", None)
    if stats is not None and hasattr(stats, "register_into"):
        yield stats


def network_metrics(
    network: "CollectionNetwork",
    registry: Optional[MetricsRegistry] = None,
    per_node: bool = True,
) -> MetricsRegistry:
    """Register every layer's counters from ``network`` into a registry.

    ``per_node=True`` labels each counter with its node id; ``False`` folds
    all nodes into unlabeled totals (smaller snapshots for large networks —
    counters merge by addition, so totals are exact either way).
    """
    if registry is None:
        registry = MetricsRegistry()
    for nid, node in sorted(network.nodes.items()):
        labels = {"node": str(nid)} if per_node else {}
        for stats in _node_stats_objects(node):
            stats.register_into(registry, **labels)
    medium = network.medium
    registry.counter("phy.medium.transmissions").inc(medium.transmissions)
    registry.counter("phy.medium.deliveries").inc(medium.deliveries)
    registry.counter("phy.medium.collisions").inc(medium.collisions)
    registry.counter("phy.medium.white_bits_set").inc(medium.white_bits_set)
    registry.counter("sim.engine.events_run").inc(network.engine.events_run)
    registry.gauge("sim.engine.pending").set(network.engine.pending)
    registry.gauge("sim.engine.now_s").set(network.engine.now)
    injector = getattr(network, "fault_injector", None)
    if injector is not None:
        injector.register_metrics(registry)
    checker = getattr(network, "invariant_checker", None)
    if checker is not None:
        registry.counter("faults.invariants.checks_run").inc(checker.checks_run)
        registry.counter("faults.invariants.violations").inc(len(checker.violations))
    return registry
