"""Live telemetry streaming — incremental metrics snapshots during a run.

Everything else in :mod:`repro.obs` reports *after* a run; this module is
the streaming substrate the sim-as-a-service roadmap item sits on.  A
:class:`TelemetrySampler` rides the simulation's own event loop: every
``period_s`` simulated seconds it rebuilds the cross-layer metrics
registry (:func:`repro.obs.bridge.network_metrics`), diffs the flat
snapshot against the previously emitted state, and pushes one typed JSONL
record to a :class:`TelemetrySink`.  The sampler consumes no randomness
and schedules nothing on the frame path, so — exactly like trace
instrumentation — a sampled run is bit-identical to an unsampled one
apart from the extra (pure-observer) engine events; with telemetry off the
machinery is never constructed and costs nothing.

Stream record schema (one JSON object per line; DESIGN.md §10):

==============  ============================================================
``rec``         fields (beyond the ``seq``/``t``/``run`` envelope)
==============  ============================================================
``run-start``   ``protocol, seed, nodes, duration_s, medium, period_s,
                per_node`` — one per run, before the first sample
``snapshot``    ``full`` (true when ``updates`` is the whole state),
                ``updates`` — flat ``{key: value}`` of every metric whose
                value changed since the previous snapshot record
``run-end``     ``events_run, metrics`` (distinct keys streamed) and,
                when captured, ``resources`` (wall/CPU/max-RSS — the one
                deliberately wall-clock-dependent field group)
``sweep-start``  ``total`` — emitted by the *runner* around a sweep
``run-result``  ``label, digest, status (ok|cached|failed), events_run``
                plus optional ``resources`` per completed run
``sweep-end``   ``executed, cache_hits, failures, wall_s, cpu_s,
                max_rss_kb`` — the sweep's closing accounting
``campaign-start``  ``campaign, digest, mode, planned`` — emitted by the
                *campaign queue* before its first sweep round
``campaign-round``  ``campaign, digest, round, completed, enumerated`` —
                one per completed sweep/optimizer round (checkpoint)
``campaign-end``  ``campaign, digest, status (completed|interrupted),
                executed`` — how the campaign session ended
==============  ============================================================

``seq`` increases by one per record *per emitting stream*; ``t`` is
simulated seconds for run-scoped records and ``null`` for sweep- and
campaign-scoped ones (they live in wall time).  Because ``updates`` carries deltas keyed
by full flat metric keys, :func:`fold_snapshots` reconstructs the exact
end-of-run registry snapshot by replaying records in order — counters in
the folded state match :meth:`MetricsRegistry.snapshot` at run end
key-for-key (the acceptance contract, tested in ``tests/obs``).
"""

from __future__ import annotations

import json
import math
import os
from collections import deque
from dataclasses import dataclass
from pathlib import Path
from typing import (
    TYPE_CHECKING,
    Any,
    Deque,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Union,
)

from repro.obs.metrics import MetricsRegistry, parse_flat_key, register_dataclass_counters

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.network import CollectionNetwork

#: Every record kind the stream may carry, by scope.
RUN_KINDS = ("run-start", "snapshot", "run-end")
SWEEP_KINDS = ("sweep-start", "run-result", "sweep-end")
CAMPAIGN_KINDS = ("campaign-start", "campaign-round", "campaign-end")
STREAM_KINDS = RUN_KINDS + SWEEP_KINDS + CAMPAIGN_KINDS

#: Required fields (beyond the envelope) per record kind.
_REQUIRED_FIELDS: Dict[str, tuple] = {
    "run-start": ("protocol", "seed", "nodes", "duration_s", "period_s"),
    "snapshot": ("full", "updates"),
    "run-end": ("events_run", "metrics"),
    "sweep-start": ("total",),
    "run-result": ("label", "status"),
    "sweep-end": ("executed", "cache_hits", "failures"),
    "campaign-start": ("campaign", "digest", "mode"),
    "campaign-round": ("campaign", "digest", "round", "completed"),
    "campaign-end": ("campaign", "digest", "status"),
}

_RUN_RESULT_STATUSES = ("ok", "cached", "failed")
_CAMPAIGN_END_STATUSES = ("completed", "interrupted")


def _sanitize_value(value: Any) -> Any:
    """Non-finite floats become ``None`` so strict JSON always serializes."""
    if isinstance(value, float) and not math.isfinite(value):
        return None
    if isinstance(value, dict):
        return {k: _sanitize_value(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_sanitize_value(v) for v in value]
    return value


def encode_record(record: Dict[str, Any]) -> str:
    """One stream record as a strict-JSON line (no trailing newline)."""
    return json.dumps(
        _sanitize_value(record), separators=(",", ":"), allow_nan=False
    )


def validate_record(record: Any) -> List[str]:
    """Schema check for one decoded stream record; returns error strings.

    An empty list means the record is valid.  Used by ``python -m repro.obs
    tail --check`` and the CI ``obs-live`` job.
    """
    errors: List[str] = []
    if not isinstance(record, dict):
        return [f"record is {type(record).__name__}, not an object"]
    kind = record.get("rec")
    if kind not in STREAM_KINDS:
        return [f"unknown record kind {kind!r} (want one of {STREAM_KINDS})"]
    seq = record.get("seq")
    if not isinstance(seq, int) or isinstance(seq, bool) or seq < 0:
        errors.append(f"seq must be a non-negative int, got {seq!r}")
    t = record.get("t")
    if kind in RUN_KINDS:
        if not isinstance(t, (int, float)) or isinstance(t, bool):
            errors.append(f"{kind}: t must be simulated seconds, got {t!r}")
    elif t is not None:
        errors.append(f"{kind}: sweep-scoped records carry t=null, got {t!r}")
    for name in _REQUIRED_FIELDS[kind]:
        if name not in record:
            errors.append(f"{kind}: missing required field {name!r}")
    if kind == "snapshot":
        updates = record.get("updates")
        if not isinstance(updates, dict):
            errors.append(f"snapshot: updates must be an object, got {type(updates).__name__}")
        else:
            for key, value in updates.items():
                if value is not None and (
                    isinstance(value, bool) or not isinstance(value, (int, float))
                ):
                    errors.append(f"snapshot: non-numeric value for {key!r}: {value!r}")
                    break
        if not isinstance(record.get("full"), bool):
            errors.append("snapshot: full must be a bool")
    if kind == "run-result" and record.get("status") not in _RUN_RESULT_STATUSES:
        errors.append(
            f"run-result: status must be one of {_RUN_RESULT_STATUSES}, "
            f"got {record.get('status')!r}"
        )
    if kind == "campaign-end" and record.get("status") not in _CAMPAIGN_END_STATUSES:
        errors.append(
            f"campaign-end: status must be one of {_CAMPAIGN_END_STATUSES}, "
            f"got {record.get('status')!r}"
        )
    return errors


def fold_snapshots(records: Iterable[Dict[str, Any]]) -> Dict[str, float]:
    """Replay ``snapshot`` records into the cumulative flat metrics state.

    Later updates win key-by-key, so the fold of a complete stream equals
    the end-of-run :meth:`MetricsRegistry.snapshot` exactly.
    """
    state: Dict[str, float] = {}
    for record in records:
        if record.get("rec") == "snapshot":
            state.update(record.get("updates", {}))
    return state


def read_stream(path: Union[str, Path]) -> Iterator[Dict[str, Any]]:
    """Yield decoded records from a stream file (blank lines skipped)."""
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if line:
                yield json.loads(line)


# ---------------------------------------------------------------------------
# Sinks
# ---------------------------------------------------------------------------
class TelemetrySink:
    """What the sampler writes to: ``emit`` one record, ``close`` at end.

    Structural base class — any object with these two methods works; the
    bundled implementations cover the common shapes (file JSONL for
    tailing, bounded ring for in-process consumers, Prometheus text
    exposition for scrape-style monitoring).
    """

    def emit(self, record: Dict[str, Any]) -> None:  # pragma: no cover - interface
        raise NotImplementedError

    def close(self) -> None:  # pragma: no cover - interface
        pass


@dataclass
class StreamStats:
    """Counters for one telemetry stream (sampler + sink together)."""

    records_emitted: int = 0
    snapshot_records: int = 0
    keys_emitted: int = 0
    bytes_written: int = 0

    METRICS_PREFIX = "obs.stream"

    def register_into(self, registry: MetricsRegistry, **labels: object) -> None:
        """Register every counter as ``obs.stream.<field>``."""
        register_dataclass_counters(registry, self.METRICS_PREFIX, self, **labels)


class JsonlStreamSink(TelemetrySink):
    """Append stream records to a JSONL file, flushed per record.

    ``append=True`` (the default) opens in append mode so several runs —
    including runner worker *processes* — can share one stream file: each
    record is written with a single ``write()`` of one ``\\n``-terminated
    line, which POSIX appends atomically enough for line-oriented readers,
    and the ``run`` envelope field demultiplexes interleaved runs.  Every
    record is flushed immediately so ``python -m repro.obs tail --follow``
    sees it live.
    """

    def __init__(self, path: Union[str, Path], append: bool = True) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.stats = StreamStats()
        self._fh = open(self.path, "a" if append else "w")

    def emit(self, record: Dict[str, Any]) -> None:
        line = encode_record(record) + "\n"
        self._fh.write(line)
        self._fh.flush()
        self.stats.records_emitted += 1
        self.stats.bytes_written += len(line)

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.close()

    def __enter__(self) -> "JsonlStreamSink":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


class RingStreamSink(TelemetrySink):
    """Bounded in-memory ring of the most recent records.

    For in-process consumers (a service endpoint, tests): memory stays
    bounded at ``capacity`` records; ``dropped`` counts overwritten ones.
    """

    def __init__(self, capacity: int = 1024) -> None:
        if capacity <= 0:
            raise ValueError(f"ring capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._ring: Deque[Dict[str, Any]] = deque(maxlen=capacity)
        self.dropped = 0
        self.stats = StreamStats()

    def emit(self, record: Dict[str, Any]) -> None:
        if len(self._ring) == self.capacity:
            self.dropped += 1
        self._ring.append(record)
        self.stats.records_emitted += 1

    @property
    def records(self) -> List[Dict[str, Any]]:
        return list(self._ring)

    def close(self) -> None:
        pass


def _prom_escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


class PrometheusTextSink(TelemetrySink):
    """Fold snapshots into Prometheus text exposition format.

    Keeps the latest cumulative state (the same fold as
    :func:`fold_snapshots`); :meth:`render` returns the text exposition
    and, when a ``path`` is given, each sample atomically replaces the
    file so a node-exporter-style textfile collector never reads a torn
    write.  Metric names map ``layer.component.event`` → ``layer_component_event``.
    """

    def __init__(self, path: Optional[Union[str, Path]] = None) -> None:
        self.path = Path(path) if path is not None else None
        if self.path is not None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
        self._state: Dict[str, float] = {}
        self.stats = StreamStats()

    def emit(self, record: Dict[str, Any]) -> None:
        self.stats.records_emitted += 1
        if record.get("rec") != "snapshot":
            return
        self._state.update(record.get("updates", {}))
        self.stats.snapshot_records += 1
        if self.path is not None:
            tmp = self.path.with_name(self.path.name + ".tmp")
            tmp.write_text(self.render())
            os.replace(tmp, self.path)

    def render(self) -> str:
        lines = []
        for key in sorted(self._state):
            name, labels = parse_flat_key(key)
            prom_name = name.replace(".", "_")
            if labels:
                inner = ",".join(
                    f'{k}="{_prom_escape(v)}"' for k, v in sorted(labels.items())
                )
                prom_name = f"{prom_name}{{{inner}}}"
            value = self._state[key]
            lines.append(f"{prom_name} {value:g}")
        return "\n".join(lines) + ("\n" if lines else "")

    def close(self) -> None:
        pass


# ---------------------------------------------------------------------------
# The sampler
# ---------------------------------------------------------------------------
class TelemetrySampler:
    """Deterministic sim-time metrics sampler driven by engine events.

    Built by :class:`~repro.sim.network.CollectionNetwork` when
    ``SimConfig.telemetry_period_s`` is set (or attached manually via
    :meth:`install`).  Each fire rebuilds the registry from the live
    network, emits the changed keys, and reschedules itself; the final
    sample plus the ``run-end`` record ride the network's ``on_run_end``
    hook so the stream always closes with the exact end-of-run state.
    """

    def __init__(
        self,
        network: "CollectionNetwork",
        sink: TelemetrySink,
        period_s: float,
        per_node: bool = False,
        run_id: Optional[str] = None,
    ) -> None:
        if period_s <= 0.0:
            raise ValueError(f"telemetry period must be positive, got {period_s}")
        self.network = network
        self.sink = sink
        self.period_s = period_s
        self.per_node = per_node
        self.run_id = run_id
        self.stats = StreamStats()
        self._last: Dict[str, float] = {}
        self._seq = 0
        self._installed = False
        self._finished = False

    # -- record plumbing -------------------------------------------------
    def _emit(self, kind: str, t: Optional[float], **fields: Any) -> None:
        record: Dict[str, Any] = {"rec": kind, "seq": self._seq, "t": t}
        if self.run_id is not None:
            record["run"] = self.run_id
        record.update(fields)
        self._seq += 1
        self.stats.records_emitted += 1
        self.sink.emit(record)

    def _snapshot_now(self) -> Dict[str, float]:
        from repro.obs.bridge import network_metrics

        return network_metrics(self.network, per_node=self.per_node).snapshot()

    def _emit_snapshot(self) -> None:
        snap = self._snapshot_now()
        last = self._last
        first = not self.stats.snapshot_records
        updates = {k: v for k, v in snap.items() if first or last.get(k) != v}
        self.stats.snapshot_records += 1
        self.stats.keys_emitted += len(updates)
        self._emit(
            "snapshot", self.network.engine.now, full=first, updates=updates
        )
        self._last = snap

    # -- lifecycle -------------------------------------------------------
    def install(self) -> None:
        """Emit ``run-start``, arm the periodic sample, hook run end."""
        if self._installed:
            return
        self._installed = True
        config = self.network.config
        self._emit(
            "run-start",
            self.network.engine.now,
            protocol=config.protocol,
            seed=config.seed,
            nodes=len(self.network.nodes),
            duration_s=config.duration_s,
            medium=config.medium,
            period_s=self.period_s,
            per_node=self.per_node,
        )
        if self.period_s <= config.duration_s:
            self.network.engine.schedule(self.period_s, self._sample)
        self.network.on_run_end.append(self._on_run_end)

    def _sample(self) -> None:
        self._emit_snapshot()
        engine = self.network.engine
        if engine.now + self.period_s <= self.network.config.duration_s:
            engine.schedule(self.period_s, self._sample)

    def _on_run_end(self, network: "CollectionNetwork") -> None:
        if self._finished:
            return
        self._finished = True
        self._emit_snapshot()
        resources = getattr(network, "run_resources", None)
        extra: Dict[str, Any] = {}
        if resources is not None:
            extra["resources"] = dict(resources)
        self._emit(
            "run-end",
            network.engine.now,
            events_run=network.engine.events_run,
            metrics=len(self._last),
            **extra,
        )

    def close(self) -> None:
        self.sink.close()


__all__ = [
    "CAMPAIGN_KINDS",
    "JsonlStreamSink",
    "PrometheusTextSink",
    "RingStreamSink",
    "STREAM_KINDS",
    "StreamStats",
    "TelemetrySampler",
    "TelemetrySink",
    "encode_record",
    "fold_snapshots",
    "read_stream",
    "validate_record",
]
