"""Offline trace analysis — ``python -m repro.obs``.

Answers debugging questions from an exported JSONL trace (see the schema
in :mod:`repro.sim.trace`) without re-running the simulation::

    python -m repro.obs summary trace.jsonl          # whole-run overview
    python -m repro.obs timeline trace.jsonl --node 7 --kind parent-change
    python -m repro.obs flaps trace.jsonl            # parent churn per node
    python -m repro.obs convergence trace.jsonl      # est. ETX vs ground truth
    python -m repro.obs journey trace.jsonl          # per-packet span trees
    python -m repro.obs tail live.jsonl --check      # telemetry stream records
    python -m repro.obs tail live.jsonl -f           # ... following live appends

Rotated sink segments may be passed oldest-first (``trace.jsonl.2
trace.jsonl.1 trace.jsonl``); records from every file are pooled.

All analysis output goes to stdout; it is plain text, not JSON.
"""

from __future__ import annotations

import argparse
import math
import sys
from collections import Counter as TallyCounter
from typing import Any, Dict, List, Optional, Tuple

from repro.analysis.render import table, timeseries
from repro.sim.trace import NETWORK_NODE, Tracer


def _load(paths: List[str]) -> Tracer:
    return Tracer.from_jsonl(*paths)


def _hist(values: List[float], bins: int = 10, width: int = 40) -> str:
    """Text histogram: one bar per bin, count-scaled."""
    if not values:
        return "(no data)"
    lo, hi = min(values), max(values)
    span = (hi - lo) or 1.0
    counts = [0] * bins
    for v in values:
        idx = min(bins - 1, int((v - lo) / span * bins))
        counts[idx] += 1
    peak = max(counts)
    lines = []
    for i, n in enumerate(counts):
        b_lo = lo + span * i / bins
        b_hi = lo + span * (i + 1) / bins
        bar = "#" * (n * width // peak if peak else 0)
        lines.append(f"  [{b_lo:8.3f}, {b_hi:8.3f})  {n:>6}  {bar}")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# summary
# ---------------------------------------------------------------------------
def cmd_summary(args: argparse.Namespace) -> int:
    tracer = _load(args.trace)
    records = list(tracer.records)
    events = [r for r in records if r.kind != "stats"]
    nodes = sorted({r.node for r in records if r.node != NETWORK_NODE})
    print(f"{len(records)} records from {len(args.trace)} file(s), {len(nodes)} nodes")
    if records:
        t0 = min(r.time for r in records)
        t1 = max(r.time for r in records)
        print(f"span: {t0:.3f}s .. {t1:.3f}s")
    if tracer.dropped:
        print(f"WARNING: {tracer.dropped} records were dropped at capacity")
    if tracer.filtered:
        print(f"note: {tracer.filtered} records were excluded by a kind filter")

    kinds = TallyCounter(r.kind for r in events)
    if kinds:
        print()
        print(table(
            ["kind", "records"],
            [[k, n] for k, n in sorted(kinds.items(), key=lambda kv: -kv[1])],
            title="records by kind",
        ))

    # Per-layer counter totals from the end-of-run `stats` records.  These
    # match the in-process stats dataclasses exactly (they are emitted from
    # them), so the four-bit event counts here are authoritative.
    stats_recs = [r for r in records if r.kind == "stats"]
    by_layer: Dict[str, TallyCounter] = {}
    layer_nodes: Dict[str, int] = {}
    for r in stats_recs:
        layer = str(r.get("layer", "?"))
        tally = by_layer.setdefault(layer, TallyCounter())
        layer_nodes[layer] = layer_nodes.get(layer, 0) + 1
        for key, value in r.fields.items():
            if key == "layer" or not isinstance(value, (int, float)):
                continue
            tally[key] += value
    if by_layer:
        rows = []
        for layer in sorted(by_layer):
            for counter, total in sorted(by_layer[layer].items()):
                if isinstance(total, float) and total == int(total):
                    total = int(total)
                rows.append([f"{layer}.{counter}", total])
        print()
        print(table(["counter (summed over nodes)", "total"], rows,
                    title="end-of-run counter totals"))
    else:
        print("\n(no `stats` records — trace was exported before run end "
              "or with a kind filter)")
    return 0


# ---------------------------------------------------------------------------
# timeline
# ---------------------------------------------------------------------------
def cmd_timeline(args: argparse.Namespace) -> int:
    tracer = _load(args.trace)
    rows = tracer.filter(
        kind=args.kind,
        node=args.node,
        t0=args.t0 if args.t0 is not None else float("-inf"),
        t1=args.t1 if args.t1 is not None else float("inf"),
    )
    total = len(rows)
    for r in rows[: args.limit]:
        print(f"{r.time:10.3f}s  node {r.node:<4} {r.kind:<14} {r.detail}")
    if total > args.limit:
        print(f"... {total - args.limit} more (raise --limit)")
    if not rows:
        print("(no matching records)")
    return 0


# ---------------------------------------------------------------------------
# flaps
# ---------------------------------------------------------------------------
def cmd_flaps(args: argparse.Namespace) -> int:
    tracer = _load(args.trace)
    changes = tracer.filter(kind="parent-change")
    if not changes:
        print("(no parent-change records)")
        return 0
    per_node: Dict[int, List] = {}
    for r in changes:
        per_node.setdefault(r.node, []).append(r)
    rows = []
    for node in sorted(per_node, key=lambda n: -len(per_node[n])):
        recs = per_node[node]
        last = recs[-1]
        final = last.get("new", -1)
        rows.append([
            node,
            len(recs),
            f"{recs[0].time:.1f}s",
            f"{last.time:.1f}s",
            final if final != -1 else "(none)",
        ])
    print(table(
        ["node", "changes", "first", "last", "final parent"],
        rows,
        title=f"parent changes ({len(changes)} total across {len(per_node)} nodes)",
    ))
    return 0


# ---------------------------------------------------------------------------
# convergence
# ---------------------------------------------------------------------------
def cmd_convergence(args: argparse.Namespace) -> int:
    tracer = _load(args.trace)
    samples = tracer.filter(kind="etx", node=args.node)
    samples = [r for r in samples if r.get("est") is not None and r.get("true") is not None]
    if not samples:
        print("(no usable `etx` records — instrument with etx_sample_s=...)")
        return 0

    if args.node is not None:
        series: Dict[str, List[Tuple[float, Optional[float]]]] = {
            "estimated": [(r.time, float(r.get("est"))) for r in samples],
            "true": [(r.time, float(r.get("true"))) for r in samples],
        }
        print(timeseries(series, title=f"node {args.node}: parent-link ETX",
                         ylabel="ETX"))
        print()

    # Per-node final sample vs ground truth.
    final: Dict[int, object] = {}
    for r in samples:
        final[r.node] = r
    rows = []
    errors = []
    for node in sorted(final):
        r = final[node]
        est = float(r.get("est"))
        truth = float(r.get("true"))
        err = est - truth
        errors.append(err)
        rows.append([node, r.get("neighbor"), f"{est:.2f}", f"{truth:.2f}", f"{err:+.2f}"])
    print(table(
        ["node", "parent", "est ETX", "true ETX", "error"],
        rows,
        title=f"final parent-link estimate vs ground truth ({len(samples)} samples)",
    ))
    print()
    print("estimation error (est − true) across all samples:")
    all_errors = [float(r.get("est")) - float(r.get("true")) for r in samples]
    # A near-dead link has a huge (but finite) true ETX; clip the histogram
    # to the 2nd–98th percentile so one outlier doesn't flatten every bin.
    ranked = sorted(all_errors)
    lo = ranked[int(0.02 * (len(ranked) - 1))]
    hi = ranked[int(0.98 * (len(ranked) - 1))]
    shown = [e for e in all_errors if lo <= e <= hi]
    print(_hist(shown))
    outliers = len(all_errors) - len(shown)
    if outliers:
        print(f"  ({outliers} outlier sample(s) outside [{lo:.2f}, {hi:.2f}] not shown)")
    mean_abs = sum(abs(e) for e in all_errors) / len(all_errors)
    med_abs = sorted(abs(e) for e in all_errors)[len(all_errors) // 2]
    print(
        f"mean |error| = {mean_abs:.3f} ETX, median |error| = {med_abs:.3f} ETX "
        f"over {len(all_errors)} samples"
    )
    return 0


# ---------------------------------------------------------------------------
# journey
# ---------------------------------------------------------------------------
def cmd_journey(args: argparse.Namespace) -> int:
    from repro.obs.journey import build_journeys, summarize_journeys

    tracer = _load(args.trace)
    journeys = build_journeys(tracer.records)
    if args.origin is not None:
        journeys = {k: j for k, j in journeys.items() if j.origin == args.origin}
    if args.seq is not None:
        journeys = {k: j for k, j in journeys.items() if j.seq == args.seq}
    if not journeys:
        print("(no packet journeys — the trace has no pkt-*/deliver records; "
              "export one from an instrumented run)")
        return 0
    selected = sorted(
        (j for j in journeys.values() if args.state is None or j.state == args.state),
        key=lambda j: (
            j.t_origin if j.t_origin is not None else math.inf, j.origin, j.seq
        ),
    )
    for journey in selected[: args.limit]:
        print(journey.render())
        print()
    if len(selected) > args.limit:
        print(f"... {len(selected) - args.limit} more journey(s) (raise --limit)\n")

    summary = summarize_journeys(journeys.values())
    print(
        f"{summary.total} packet(s): {summary.delivered} delivered "
        f"({summary.complete} with complete span chains), "
        f"{summary.dropped} dropped, {summary.in_flight} in flight"
    )
    if summary.total_attempts:
        print(
            f"link attempts: {summary.total_attempts} "
            f"({summary.total_retries} retries)"
        )
    if summary.latencies_s:
        print(f"mean delivery latency: {summary.mean_latency_s * 1000:.0f}ms "
              f"over {len(summary.latencies_s)} packet(s)")
    if summary.hop_counts:
        print(f"mean delivered hop count: {summary.mean_hops:.2f}")
    if tracer.dropped:
        print(f"WARNING: {tracer.dropped} trace records were dropped at "
              f"capacity; journeys may be incomplete")
    return 0


# ---------------------------------------------------------------------------
# tail
# ---------------------------------------------------------------------------
def _render_stream_record(record: Dict[str, Any]) -> str:
    kind = record.get("rec", "?")
    t = record.get("t")
    ts = f"{t:10.3f}s" if isinstance(t, (int, float)) else "         -"
    run = record.get("run")
    prefix = f"{ts}  {kind:<11}"
    if run:
        prefix += f" [{run}]"
    if kind == "snapshot":
        updates = record.get("updates") or {}
        full = "full, " if record.get("full") else ""
        return f"{prefix} {full}{len(updates)} key(s)"
    rest = {
        k: v for k, v in record.items() if k not in ("rec", "seq", "t", "run")
    }
    body = " ".join(f"{k}={v}" for k, v in rest.items())
    return f"{prefix} {body}".rstrip()


def cmd_tail(args: argparse.Namespace) -> int:
    import json
    import time

    from repro.obs.stream import fold_snapshots, validate_record

    kinds: TallyCounter = TallyCounter()
    snapshots: List[Dict[str, Any]] = []
    invalid = 0
    printed = 0

    def handle(line: str) -> None:
        nonlocal invalid, printed
        line = line.strip()
        if not line:
            return
        try:
            record = json.loads(line)
        except ValueError as exc:
            invalid += 1
            print(f"INVALID (bad JSON: {exc}): {line[:120]}", file=sys.stderr)
            return
        if args.check:
            for error in validate_record(record):
                invalid += 1
                print(f"INVALID: {error}", file=sys.stderr)
        kinds[str(record.get("rec"))] += 1
        if record.get("rec") == "snapshot":
            snapshots.append(record)
        if printed < args.limit:
            printed += 1
            print(_render_stream_record(record), flush=args.follow)

    with open(args.stream) as fh:
        for line in fh:
            handle(line)
        try:
            while args.follow:
                line = fh.readline()
                if line:
                    handle(line)
                else:
                    time.sleep(args.interval)
        except KeyboardInterrupt:  # pragma: no cover - interactive only
            pass

    folded = fold_snapshots(snapshots)
    total = sum(kinds.values())
    parts = ", ".join(f"{k}={n}" for k, n in sorted(kinds.items()))
    print(f"\n{total} record(s) ({parts or 'none'}); "
          f"folded state: {len(folded)} metric key(s)")
    if args.check:
        if invalid:
            print(f"{invalid} invalid record(s)", file=sys.stderr)
            return 1
        print("all records valid")
    return 0


# ---------------------------------------------------------------------------
def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("summary", help="whole-run overview: kinds, counter totals")
    p.add_argument("trace", nargs="+", help="JSONL trace file(s), oldest first")
    p.set_defaults(fn=cmd_summary)

    p = sub.add_parser("timeline", help="chronological event listing")
    p.add_argument("trace", nargs="+")
    p.add_argument("--node", type=int, default=None, help="only this node")
    p.add_argument("--kind", default=None, help="only this record kind")
    p.add_argument("--t0", type=float, default=None, help="from simulated time (s)")
    p.add_argument("--t1", type=float, default=None, help="to simulated time (s)")
    p.add_argument("--limit", type=int, default=100, help="max rows (default 100)")
    p.set_defaults(fn=cmd_timeline)

    p = sub.add_parser("flaps", help="parent-change churn per node")
    p.add_argument("trace", nargs="+")
    p.set_defaults(fn=cmd_flaps)

    p = sub.add_parser(
        "convergence", help="estimated parent-link ETX vs channel ground truth"
    )
    p.add_argument("trace", nargs="+")
    p.add_argument("--node", type=int, default=None, help="plot one node over time")
    p.set_defaults(fn=cmd_convergence)

    p = sub.add_parser(
        "journey",
        help="reconstruct causal per-packet span trees (tx → rx → … → deliver)",
    )
    p.add_argument("trace", nargs="+")
    p.add_argument("--origin", type=int, default=None, help="only packets from this node")
    p.add_argument("--seq", type=int, default=None, help="only this origin sequence number")
    p.add_argument(
        "--state",
        choices=("delivered", "dropped", "in-flight"),
        default=None,
        help="only journeys with this terminal state",
    )
    p.add_argument("--limit", type=int, default=20, help="max trees printed (default 20)")
    p.set_defaults(fn=cmd_journey)

    p = sub.add_parser(
        "tail", help="print (and optionally follow/validate) a telemetry stream"
    )
    p.add_argument("stream", help="JSONL stream file (from --live-telemetry)")
    p.add_argument(
        "-f", "--follow", action="store_true",
        help="keep reading as the file grows (Ctrl-C to stop)",
    )
    p.add_argument(
        "--interval", type=float, default=0.5,
        help="poll interval in seconds with --follow (default 0.5)",
    )
    p.add_argument("--limit", type=int, default=1000, help="max records printed")
    p.add_argument(
        "--check", action="store_true",
        help="validate every record against the stream schema; exit 1 on any "
        "invalid record",
    )
    p.set_defaults(fn=cmd_tail)

    args = parser.parse_args(argv)
    try:
        return args.fn(args)
    except BrokenPipeError:  # e.g. `... | head` closed the pipe; not an error
        try:
            sys.stdout.close()
        except Exception:
            pass
        return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
