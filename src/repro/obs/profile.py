"""Run profiling for the discrete-event engine.

An :class:`EngineProfiler` attaches to :class:`~repro.sim.engine.Engine`
(via ``engine.enable_profiling()``) and records, for every event executed:

* wall time bucketed by **event kind** (the callback's qualified name —
  ``Mac._cca``, ``CtpForwardingEngine._pump``, …), so a sweep can report
  where real time goes;
* total events and wall seconds → events/sec;
* **queue depth over (simulated) time**, sampled every
  ``queue_sample_every`` events, so backlog growth is visible.

The engine pays a single ``is not None`` branch per event when profiling is
off; the measured overhead when on is one ``perf_counter`` pair per event.
"""

from __future__ import annotations

from time import perf_counter
from typing import Dict, List, Optional, Tuple


class EngineProfiler:
    """Per-event-kind wall-time and queue-depth accounting."""

    #: Per-event latency samples kept before decimation kicks in.  At the
    #: cap every other retained sample is dropped and the keep-stride
    #: doubles, so memory stays bounded while the sample remains spread
    #: deterministically across the whole run.
    LATENCY_SAMPLE_CAP = 65536

    __slots__ = (
        "event_counts",
        "event_wall_s",
        "kernel_counts",
        "kernel_wall_s",
        "queue_samples",
        "queue_sample_every",
        "latency_samples",
        "_lat_stride",
        "_lat_skip",
        "_since_sample",
        "_wall_start",
        "wall_s",
        "events",
        "compactions",
    )

    def __init__(self, queue_sample_every: int = 256) -> None:
        self.event_counts: Dict[str, int] = {}
        self.event_wall_s: Dict[str, float] = {}
        #: Sub-event kernel buckets (``medium_fast.prr_decode``, …): wall
        #: time attributed *inside* one callback, so a vectorized medium's
        #: cost is not lumped under a single event kind.
        self.kernel_counts: Dict[str, int] = {}
        self.kernel_wall_s: Dict[str, float] = {}
        #: (simulated time, live queue depth) samples.
        self.queue_samples: List[Tuple[float, int]] = []
        self.queue_sample_every = max(1, queue_sample_every)
        #: Per-event wall-time samples (seconds), decimated past the cap.
        self.latency_samples: List[float] = []
        self._lat_stride = 1
        self._lat_skip = 0
        self._since_sample = 0
        self._wall_start: Optional[float] = None
        self.wall_s = 0.0
        self.events = 0
        #: Heap tombstone compactions (mirrored from ``Engine.compactions``
        #: each time one runs): distinguishes "many canceled timers" churn
        #: from genuine event-volume cost in a profile.
        self.compactions = 0

    def record(self, kind: str, wall_s: float, sim_time: float, queue_depth: int) -> None:
        """Account one executed event (called by the engine's step loop)."""
        if self._wall_start is None:
            self._wall_start = perf_counter()
        self.events += 1
        self.event_counts[kind] = self.event_counts.get(kind, 0) + 1
        self.event_wall_s[kind] = self.event_wall_s.get(kind, 0.0) + wall_s
        self._lat_skip += 1
        if self._lat_skip >= self._lat_stride:
            self._lat_skip = 0
            samples = self.latency_samples
            samples.append(wall_s)
            if len(samples) >= self.LATENCY_SAMPLE_CAP:
                del samples[::2]
                self._lat_stride *= 2
        self._since_sample += 1
        if self._since_sample >= self.queue_sample_every:
            self._since_sample = 0
            self.queue_samples.append((sim_time, queue_depth))
        self.wall_s = perf_counter() - self._wall_start

    def record_kernel(self, name: str, wall_s: float, n: int = 1) -> None:
        """Attribute ``wall_s`` to a named kernel inside the current event.

        Kernel time is a *breakdown* of (not additional to) the enclosing
        event's wall time; callers time their own sections and report here.
        """
        self.kernel_counts[name] = self.kernel_counts.get(name, 0) + n
        self.kernel_wall_s[name] = self.kernel_wall_s.get(name, 0.0) + wall_s

    # ------------------------------------------------------------------
    def events_per_s(self) -> float:
        return self.events / self.wall_s if self.wall_s > 0 else 0.0

    def latency_percentiles(self, quantiles: Tuple[float, ...] = (0.5, 0.95)) -> Dict[str, float]:
        """Per-event wall-time percentiles in seconds (``{"p50": ..., ...}``).

        Computed by the nearest-rank method over the (possibly decimated)
        latency sample; empty dict when no events were recorded.
        """
        samples = sorted(self.latency_samples)
        if not samples:
            return {}
        out: Dict[str, float] = {}
        last = len(samples) - 1
        for q in quantiles:
            idx = min(last, max(0, int(round(q * last))))
            label = f"p{q * 100:g}"
            out[label] = samples[idx]
        return out

    def by_kind(self) -> List[Tuple[str, int, float]]:
        """(kind, count, wall seconds) rows, most expensive first."""
        rows = [
            (kind, self.event_counts[kind], self.event_wall_s.get(kind, 0.0))
            for kind in self.event_counts
        ]
        rows.sort(key=lambda r: r[2], reverse=True)
        return rows

    def summary(self) -> Dict[str, object]:
        """JSON-safe profile payload (attached to ``CollectionResult``)."""
        depths = [d for _, d in self.queue_samples]
        return {
            "events": self.events,
            "wall_s": self.wall_s,
            "events_per_s": self.events_per_s(),
            "compactions": self.compactions,
            "by_kind": {
                kind: {"count": count, "wall_s": wall}
                for kind, count, wall in self.by_kind()
            },
            "queue_depth": {
                "samples": len(depths),
                "max": max(depths) if depths else 0,
                "mean": sum(depths) / len(depths) if depths else 0.0,
            },
            "event_latency_s": self.latency_percentiles(),
            "kernels": {
                name: {
                    "count": self.kernel_counts[name],
                    "wall_s": self.kernel_wall_s.get(name, 0.0),
                }
                for name in sorted(
                    self.kernel_counts,
                    key=lambda k: self.kernel_wall_s.get(k, 0.0),
                    reverse=True,
                )
            },
        }

    def render(self, limit: int = 12) -> str:
        """Terminal-friendly profile table."""
        rows = self.by_kind()
        lines = [
            f"{self.events} events in {self.wall_s:.2f}s wall "
            f"({self.events_per_s() / 1000:.0f}k events/s)"
        ]
        for kind, count, wall in rows[:limit]:
            share = wall / self.wall_s * 100 if self.wall_s > 0 else 0.0
            lines.append(f"  {kind:<40} {count:>9} ev  {wall:7.3f}s  {share:5.1f}%")
        if len(rows) > limit:
            lines.append(f"  … and {len(rows) - limit} more kinds")
        depths = [d for _, d in self.queue_samples]
        if depths:
            lines.append(
                f"  queue depth: mean {sum(depths) / len(depths):.0f}, max {max(depths)}"
            )
        if self.kernel_counts:
            lines.append("  kernels:")
            for name in sorted(
                self.kernel_counts,
                key=lambda k: self.kernel_wall_s.get(k, 0.0),
                reverse=True,
            )[:limit]:
                count = self.kernel_counts[name]
                wall = self.kernel_wall_s.get(name, 0.0)
                lines.append(f"    {name:<38} {count:>9} it  {wall:7.3f}s")
        return "\n".join(lines)


def merge_profiles(profiles: List[Optional[Dict[str, object]]]) -> Optional[Dict[str, object]]:
    """Fold ``CollectionResult.profile`` dicts from several runs into one.

    Used by the sweep harness to answer "where does the whole sweep spend
    its time" without keeping per-run profilers alive.
    """
    live = [p for p in profiles if p]
    if not live:
        return None
    by_kind: Dict[str, Dict[str, float]] = {}
    kernels: Dict[str, Dict[str, float]] = {}
    events = 0
    wall = 0.0
    compactions = 0
    for p in live:
        events += int(p.get("events", 0))
        wall += float(p.get("wall_s", 0.0))
        compactions += int(p.get("compactions", 0))
        for kind, row in p.get("by_kind", {}).items():
            agg = by_kind.setdefault(kind, {"count": 0, "wall_s": 0.0})
            agg["count"] += int(row.get("count", 0))
            agg["wall_s"] += float(row.get("wall_s", 0.0))
        for name, row in p.get("kernels", {}).items():
            agg = kernels.setdefault(name, {"count": 0, "wall_s": 0.0})
            agg["count"] += int(row.get("count", 0))
            agg["wall_s"] += float(row.get("wall_s", 0.0))
    merged: Dict[str, object] = {
        "events": events,
        "wall_s": wall,
        "events_per_s": events / wall if wall > 0 else 0.0,
        "compactions": compactions,
        "by_kind": dict(
            sorted(by_kind.items(), key=lambda kv: kv[1]["wall_s"], reverse=True)
        ),
        "runs": len(live),
    }
    if kernels:
        merged["kernels"] = dict(
            sorted(kernels.items(), key=lambda kv: kv[1]["wall_s"], reverse=True)
        )
    return merged
