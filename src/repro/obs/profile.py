"""Run profiling for the discrete-event engine.

An :class:`EngineProfiler` attaches to :class:`~repro.sim.engine.Engine`
(via ``engine.enable_profiling()``) and records, for every event executed:

* wall time bucketed by **event kind** (the callback's qualified name —
  ``Mac._cca``, ``CtpForwardingEngine._pump``, …), so a sweep can report
  where real time goes;
* total events and wall seconds → events/sec;
* **queue depth over (simulated) time**, sampled every
  ``queue_sample_every`` events, so backlog growth is visible.

The engine pays a single ``is not None`` branch per event when profiling is
off; the measured overhead when on is one ``perf_counter`` pair per event.
"""

from __future__ import annotations

from time import perf_counter
from typing import Dict, List, Optional, Tuple


class EngineProfiler:
    """Per-event-kind wall-time and queue-depth accounting."""

    __slots__ = (
        "event_counts",
        "event_wall_s",
        "queue_samples",
        "queue_sample_every",
        "_since_sample",
        "_wall_start",
        "wall_s",
        "events",
    )

    def __init__(self, queue_sample_every: int = 256) -> None:
        self.event_counts: Dict[str, int] = {}
        self.event_wall_s: Dict[str, float] = {}
        #: (simulated time, live queue depth) samples.
        self.queue_samples: List[Tuple[float, int]] = []
        self.queue_sample_every = max(1, queue_sample_every)
        self._since_sample = 0
        self._wall_start: Optional[float] = None
        self.wall_s = 0.0
        self.events = 0

    def record(self, kind: str, wall_s: float, sim_time: float, queue_depth: int) -> None:
        """Account one executed event (called by the engine's step loop)."""
        if self._wall_start is None:
            self._wall_start = perf_counter()
        self.events += 1
        self.event_counts[kind] = self.event_counts.get(kind, 0) + 1
        self.event_wall_s[kind] = self.event_wall_s.get(kind, 0.0) + wall_s
        self._since_sample += 1
        if self._since_sample >= self.queue_sample_every:
            self._since_sample = 0
            self.queue_samples.append((sim_time, queue_depth))
        self.wall_s = perf_counter() - self._wall_start

    # ------------------------------------------------------------------
    def events_per_s(self) -> float:
        return self.events / self.wall_s if self.wall_s > 0 else 0.0

    def by_kind(self) -> List[Tuple[str, int, float]]:
        """(kind, count, wall seconds) rows, most expensive first."""
        rows = [
            (kind, self.event_counts[kind], self.event_wall_s.get(kind, 0.0))
            for kind in self.event_counts
        ]
        rows.sort(key=lambda r: r[2], reverse=True)
        return rows

    def summary(self) -> Dict[str, object]:
        """JSON-safe profile payload (attached to ``CollectionResult``)."""
        depths = [d for _, d in self.queue_samples]
        return {
            "events": self.events,
            "wall_s": self.wall_s,
            "events_per_s": self.events_per_s(),
            "by_kind": {
                kind: {"count": count, "wall_s": wall}
                for kind, count, wall in self.by_kind()
            },
            "queue_depth": {
                "samples": len(depths),
                "max": max(depths) if depths else 0,
                "mean": sum(depths) / len(depths) if depths else 0.0,
            },
        }

    def render(self, limit: int = 12) -> str:
        """Terminal-friendly profile table."""
        rows = self.by_kind()
        lines = [
            f"{self.events} events in {self.wall_s:.2f}s wall "
            f"({self.events_per_s() / 1000:.0f}k events/s)"
        ]
        for kind, count, wall in rows[:limit]:
            share = wall / self.wall_s * 100 if self.wall_s > 0 else 0.0
            lines.append(f"  {kind:<40} {count:>9} ev  {wall:7.3f}s  {share:5.1f}%")
        if len(rows) > limit:
            lines.append(f"  … and {len(rows) - limit} more kinds")
        depths = [d for _, d in self.queue_samples]
        if depths:
            lines.append(
                f"  queue depth: mean {sum(depths) / len(depths):.0f}, max {max(depths)}"
            )
        return "\n".join(lines)


def merge_profiles(profiles: List[Optional[Dict[str, object]]]) -> Optional[Dict[str, object]]:
    """Fold ``CollectionResult.profile`` dicts from several runs into one.

    Used by the sweep harness to answer "where does the whole sweep spend
    its time" without keeping per-run profilers alive.
    """
    live = [p for p in profiles if p]
    if not live:
        return None
    by_kind: Dict[str, Dict[str, float]] = {}
    events = 0
    wall = 0.0
    for p in live:
        events += int(p.get("events", 0))
        wall += float(p.get("wall_s", 0.0))
        for kind, row in p.get("by_kind", {}).items():
            agg = by_kind.setdefault(kind, {"count": 0, "wall_s": 0.0})
            agg["count"] += int(row.get("count", 0))
            agg["wall_s"] += float(row.get("wall_s", 0.0))
    return {
        "events": events,
        "wall_s": wall,
        "events_per_s": events / wall if wall > 0 else 0.0,
        "by_kind": dict(
            sorted(by_kind.items(), key=lambda kv: kv[1]["wall_s"], reverse=True)
        ),
        "runs": len(live),
    }
