"""repro.obs — the unified telemetry layer.

Three pillars, all optional and all zero-cost when unused:

* :mod:`repro.obs.metrics` — a cross-layer **metrics registry**: named
  counters, gauges and histograms with label support (``node``,
  ``neighbor``, ``layer``), snapshotable as a flat dict and mergeable
  across nodes and runs.  Metric names follow ``layer.component.event``
  (e.g. ``est.estimator.rejected_no_white``).
* :mod:`repro.obs.profile` — a lightweight **run profiler** for the
  discrete-event engine: wall time per event kind, events/sec, and queue
  depth over time.  Enabled per run via ``SimConfig(profile_events=True)``.
* :mod:`repro.obs.cli` — an **offline trace-analysis CLI**
  (``python -m repro.obs``) that answers debugging questions from an
  exported JSONL trace: per-node timelines, parent-flap counts, ETX
  convergence against ground truth, whole-run summaries, and causal
  per-packet ``journey`` span trees.
* :mod:`repro.obs.stream` — **live telemetry streaming**: a deterministic
  sim-time sampler that emits incremental metrics snapshots as typed JSONL
  records to pluggable sinks (file, bounded ring, Prometheus text);
  follow a stream with ``python -m repro.obs tail -f``.
* :mod:`repro.obs.journey` — **causal packet-journey reconstruction**:
  correlates trace records by ``(origin, seq)`` into span trees with
  per-hop retries and latencies.
* :mod:`repro.obs.resources` — **run resource accounting**: wall/CPU/peak
  RSS per run via ``resource.getrusage``, aggregated across sweeps.

The structured tracing itself lives in :mod:`repro.sim.trace` (it hooks a
built network); :func:`repro.obs.bridge.network_metrics` lifts every
layer's ad-hoc stats dataclasses into one registry after a run.
"""

from repro.obs.bridge import network_metrics
from repro.obs.journey import (
    HopSpan,
    PacketJourney,
    build_journeys,
    summarize_journeys,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    register_dataclass_counters,
)
from repro.obs.profile import EngineProfiler
from repro.obs.resources import ResourceProbe, format_resources, merge_resources
from repro.obs.stream import (
    JsonlStreamSink,
    PrometheusTextSink,
    RingStreamSink,
    TelemetrySampler,
    TelemetrySink,
    fold_snapshots,
    read_stream,
    validate_record,
)

__all__ = [
    "Counter",
    "EngineProfiler",
    "Gauge",
    "Histogram",
    "HopSpan",
    "JsonlStreamSink",
    "MetricsRegistry",
    "PacketJourney",
    "PrometheusTextSink",
    "ResourceProbe",
    "RingStreamSink",
    "TelemetrySampler",
    "TelemetrySink",
    "build_journeys",
    "fold_snapshots",
    "format_resources",
    "merge_resources",
    "network_metrics",
    "read_stream",
    "register_dataclass_counters",
    "summarize_journeys",
    "validate_record",
]
