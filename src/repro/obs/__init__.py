"""repro.obs — the unified telemetry layer.

Three pillars, all optional and all zero-cost when unused:

* :mod:`repro.obs.metrics` — a cross-layer **metrics registry**: named
  counters, gauges and histograms with label support (``node``,
  ``neighbor``, ``layer``), snapshotable as a flat dict and mergeable
  across nodes and runs.  Metric names follow ``layer.component.event``
  (e.g. ``est.estimator.rejected_no_white``).
* :mod:`repro.obs.profile` — a lightweight **run profiler** for the
  discrete-event engine: wall time per event kind, events/sec, and queue
  depth over time.  Enabled per run via ``SimConfig(profile_events=True)``.
* :mod:`repro.obs.cli` — an **offline trace-analysis CLI**
  (``python -m repro.obs``) that answers debugging questions from an
  exported JSONL trace: per-node timelines, parent-flap counts, ETX
  convergence against ground truth, and whole-run summaries.

The structured tracing itself lives in :mod:`repro.sim.trace` (it hooks a
built network); :func:`repro.obs.bridge.network_metrics` lifts every
layer's ad-hoc stats dataclasses into one registry after a run.
"""

from repro.obs.bridge import network_metrics
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    register_dataclass_counters,
)
from repro.obs.profile import EngineProfiler

__all__ = [
    "Counter",
    "EngineProfiler",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "network_metrics",
    "register_dataclass_counters",
]
