"""Entry point: ``python -m repro.obs`` → the offline trace-analysis CLI."""

import sys

from repro.obs.cli import main

sys.exit(main())
