"""Causal packet-journey reconstruction from trace records.

The forwarding hooks in :mod:`repro.sim.trace` stamp every datapath event
with the packet's ``(origin, seq)`` identity: ``pkt-orig`` when the
application hands a packet to its origin's forwarding queue, one
``pkt-tx`` per forwarding-level unicast attempt, one ``pkt-rx`` per
arrival (with its fate — delivered at a root, forwarded, suppressed as a
duplicate, or dropped), plus the existing ``drop``/``deliver`` records.
This module correlates them into one **span tree** per packet: a
:class:`HopSpan` per node the packet visited, parent/child edges from the
``src`` field of each reception, per-hop attempt/retry counts and
latencies, and a terminal state.

Offline entry point: ``python -m repro.obs journey trace.jsonl``.  The
MultiHopLQI stack has no forwarding engine and emits no ``pkt-*``
records; its packets still get a (hop-less) journey from the ``deliver``
records, so delivery accounting stays protocol-agnostic.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Set, Tuple

#: (origin node id, origin sequence number) — the packet's identity.
PacketKey = Tuple[int, int]


@dataclass
class HopSpan:
    """One node's involvement in one packet's journey."""

    node: int
    #: First / last simulated time the packet was seen at this node.
    t_first: float = math.inf
    t_last: float = -math.inf
    #: Forwarding-level unicast attempts made *by this node* for the packet.
    attempts: int = 0
    acked: int = 0
    #: Where the last attempt was aimed (the intended next hop).
    next_hop: Optional[int] = None
    #: Fate of the packet *at this node* ("origin", "forward", "deliver",
    #: "dup", "drop-thl", "queue-full", "drop-retries"; "" when unknown).
    outcome: str = ""
    #: Duplicate arrivals suppressed at this node.
    duplicates: int = 0
    #: Nodes that received this packet from this node.
    children: List["HopSpan"] = field(default_factory=list)

    @property
    def retries(self) -> int:
        """Unacked attempts (the per-hop retransmission count)."""
        return max(0, self.attempts - self.acked)

    @property
    def dwell_s(self) -> float:
        """Time between first and last event at this node."""
        if self.t_first > self.t_last:
            return 0.0
        return self.t_last - self.t_first

    def touch(self, t: float) -> None:
        self.t_first = min(self.t_first, t)
        self.t_last = max(self.t_last, t)


@dataclass
class PacketJourney:
    """The reconstructed end-to-end story of one packet."""

    origin: int
    seq: int
    #: Time the application handed the packet to the origin (None when the
    #: trace lacks a ``pkt-orig`` record — filtered or capacity-dropped).
    t_origin: Optional[float] = None
    delivered: bool = False
    t_delivered: Optional[float] = None
    #: Root node that delivered it (from its ``pkt-rx`` outcome=deliver).
    delivered_at: Optional[int] = None
    #: Hop count reported by the root's ``deliver`` record (thl + 1).
    delivered_hops: Optional[int] = None
    dropped: bool = False
    drop_reason: str = ""
    drop_node: Optional[int] = None
    #: Per-node spans, keyed by node id.
    hops: Dict[int, HopSpan] = field(default_factory=dict)

    def span(self, node: int) -> HopSpan:
        hop = self.hops.get(node)
        if hop is None:
            hop = self.hops[node] = HopSpan(node=node)
        return hop

    @property
    def key(self) -> PacketKey:
        return (self.origin, self.seq)

    @property
    def state(self) -> str:
        """Terminal state: ``delivered``, ``dropped`` or ``in-flight``."""
        if self.delivered:
            return "delivered"
        if self.dropped:
            return "dropped"
        return "in-flight"

    @property
    def latency_s(self) -> Optional[float]:
        """End-to-end delivery latency (None unless both ends are known)."""
        if self.t_origin is None or self.t_delivered is None:
            return None
        return self.t_delivered - self.t_origin

    @property
    def total_attempts(self) -> int:
        return sum(h.attempts for h in self.hops.values())

    @property
    def total_retries(self) -> int:
        return sum(h.retries for h in self.hops.values())

    def path(self) -> List[int]:
        """Node path origin → … → delivering root along span-tree edges.

        Empty when the tree is incomplete (a hop's reception record is
        missing, so the chain cannot be walked end to end).
        """
        if self.delivered_at is None:
            return []
        parent: Dict[int, int] = {}
        for hop in self.hops.values():
            for child in hop.children:
                parent.setdefault(child.node, hop.node)
        path = [self.delivered_at]
        seen: Set[int] = {self.delivered_at}
        cursor = self.delivered_at
        while cursor != self.origin:
            nxt = parent.get(cursor)
            if nxt is None or nxt in seen:
                return []
            path.append(nxt)
            seen.add(nxt)
            cursor = nxt
        path.reverse()
        return path

    def is_complete(self) -> bool:
        """Delivered with an unbroken tx → rx → … → deliver span chain."""
        return self.delivered and bool(self.path())

    def render(self) -> str:
        """Indented span tree, one line per hop."""
        header = f"packet ({self.origin}, {self.seq}): {self.state}"
        if self.latency_s is not None:
            header += f" in {self.latency_s * 1000:.0f}ms"
        if self.delivered_hops is not None:
            header += f", {self.delivered_hops} hop(s)"
        if self.dropped:
            where = f" at node {self.drop_node}" if self.drop_node is not None else ""
            header += f" ({self.drop_reason}{where})"
        lines = [header]
        origin_span = self.hops.get(self.origin)
        visited: Set[int] = set()

        def walk(span: HopSpan, depth: int) -> None:
            if span.node in visited:
                return
            visited.add(span.node)
            t0 = "?" if math.isinf(span.t_first) else f"{span.t_first:.3f}s"
            parts = [f"node {span.node} @ {t0}"]
            if span.attempts:
                parts.append(f"tx={span.attempts} (retries={span.retries})")
            if span.duplicates:
                parts.append(f"dups={span.duplicates}")
            if span.outcome:
                parts.append(span.outcome)
            lines.append("  " * (depth + 1) + "└ " + "  ".join(parts))
            for child in span.children:
                walk(child, depth + 1)

        if origin_span is not None:
            walk(origin_span, 0)
        for span in self.hops.values():  # orphan spans (broken chains)
            if span.node not in visited:
                walk(span, 0)
        return "\n".join(lines)


def build_journeys(records: Iterable[Any]) -> Dict[PacketKey, PacketJourney]:
    """Correlate trace records into one :class:`PacketJourney` per packet.

    ``records`` may be :class:`~repro.sim.trace.TraceRecord` objects or
    plain dicts with the same keys.  Records are consumed in order (traces
    are chronological by construction); partial traces — kind filters,
    capacity drops, protocols without ``pkt-*`` hooks — degrade to partial
    journeys rather than errors.
    """
    journeys: Dict[PacketKey, PacketJourney] = {}

    def get(journey_key: PacketKey) -> PacketJourney:
        journey = journeys.get(journey_key)
        if journey is None:
            journey = journeys[journey_key] = PacketJourney(*journey_key)
        return journey

    for record in records:
        if isinstance(record, dict):
            kind = record.get("kind")
            t = float(record.get("t", 0.0))
            node = int(record.get("node", -1))
            fields_get = record.get
        else:
            kind = record.kind
            t = record.time
            node = record.node
            fields_get = record.get
        if kind == "pkt-orig":
            journey = get((node, int(fields_get("seq", -1))))
            journey.t_origin = t if journey.t_origin is None else journey.t_origin
            span = journey.span(node)
            span.touch(t)
            if not span.outcome:
                span.outcome = "origin"
        elif kind == "pkt-tx":
            journey = get((int(fields_get("origin", -1)), int(fields_get("seq", -1))))
            span = journey.span(node)
            span.touch(t)
            span.attempts += 1
            if fields_get("acked"):
                span.acked += 1
            to = fields_get("to")
            if to is not None:
                span.next_hop = int(to)
        elif kind == "pkt-rx":
            journey = get((int(fields_get("origin", -1)), int(fields_get("seq", -1))))
            span = journey.span(node)
            span.touch(t)
            outcome = str(fields_get("outcome", ""))
            src = fields_get("src")
            if src is not None:
                sender = journey.span(int(src))
                sender.touch(t)  # the hop was live until its frame arrived
                if all(child.node != node for child in sender.children):
                    sender.children.append(span)
            if outcome == "dup":
                span.duplicates += 1
            elif outcome:
                span.outcome = outcome
            if outcome == "deliver":
                journey.delivered = True
                journey.delivered_at = node
                if journey.t_delivered is None:
                    journey.t_delivered = t
            elif outcome in ("drop-thl", "queue-full") and not journey.delivered:
                journey.dropped = True
                journey.drop_reason = outcome
                journey.drop_node = node
        elif kind == "drop":
            journey = get((int(fields_get("origin", -1)), int(fields_get("seq", -1))))
            span = journey.span(node)
            span.touch(t)
            reason = str(fields_get("reason", "drop"))
            if not journey.delivered:
                journey.dropped = True
                journey.drop_reason = reason
                journey.drop_node = node
            if reason == "retries":
                span.outcome = "drop-retries"
        elif kind == "deliver":
            # Emitted with node=origin at delivery time; protocol-agnostic.
            journey = get((node, int(fields_get("seq", -1))))
            journey.delivered = True
            if journey.t_delivered is None:
                journey.t_delivered = t
            hops = fields_get("hops")
            if hops is not None:
                journey.delivered_hops = int(hops)
    return journeys


@dataclass
class JourneySummary:
    """Aggregate fleet view over many journeys."""

    total: int = 0
    delivered: int = 0
    complete: int = 0
    dropped: int = 0
    in_flight: int = 0
    total_attempts: int = 0
    total_retries: int = 0
    latencies_s: List[float] = field(default_factory=list)
    hop_counts: List[int] = field(default_factory=list)

    @property
    def mean_latency_s(self) -> float:
        if not self.latencies_s:
            return math.nan
        return sum(self.latencies_s) / len(self.latencies_s)

    @property
    def mean_hops(self) -> float:
        if not self.hop_counts:
            return math.nan
        return sum(self.hop_counts) / len(self.hop_counts)


def summarize_journeys(journeys: Iterable[PacketJourney]) -> JourneySummary:
    summary = JourneySummary()
    for journey in journeys:
        summary.total += 1
        if journey.delivered:
            summary.delivered += 1
            if journey.is_complete():
                summary.complete += 1
        elif journey.dropped:
            summary.dropped += 1
        else:
            summary.in_flight += 1
        summary.total_attempts += journey.total_attempts
        summary.total_retries += journey.total_retries
        latency = journey.latency_s
        if latency is not None:
            summary.latencies_s.append(latency)
        if journey.delivered_hops is not None:
            summary.hop_counts.append(journey.delivered_hops)
    return summary


__all__ = [
    "HopSpan",
    "JourneySummary",
    "PacketJourney",
    "build_journeys",
    "summarize_journeys",
]
