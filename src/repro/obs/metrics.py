"""Cross-layer metrics registry.

Every layer of the stack keeps cheap per-component stats dataclasses
(:class:`~repro.core.estimator.EstimatorStats`,
:class:`~repro.link.mac.MacStats`, …) so the hot path never pays for
observability it did not ask for.  This module provides the common
vocabulary those stats register into after (or during) a run:

* :class:`Counter` — monotonically increasing event count;
* :class:`Gauge` — last-written instantaneous value;
* :class:`Histogram` — bucketed distribution with count/sum/min/max.

Metrics live in a :class:`MetricsRegistry`, keyed by a **name** following
the ``layer.component.event`` convention (``link.mac.tx_unicast``,
``net.routing.parent_switches``) plus a sorted **label set** (``node=7``,
``neighbor=3``, ``layer="est"``).  A registry snapshots to a flat
``{"name{label=value,...}": number}`` dict (JSON-safe) and merges with
other registries — per-node registries fold into one network view, and
per-run registries fold into one sweep view.
"""

from __future__ import annotations

import math
import re
from typing import Dict, Iterable, List, Sequence, Tuple, Union


#: ``layer.component.event`` — lowercase dotted path, underscores allowed.
_NAME_RE = re.compile(r"^[a-z0-9_]+(\.[a-z0-9_]+)+$")

LabelItems = Tuple[Tuple[str, str], ...]
MetricKey = Tuple[str, LabelItems]


def _label_items(labels: Dict[str, object]) -> LabelItems:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


#: Characters that are structural inside a flat key's label block.  Label
#: *values* escape them with a backslash so ``parse_flat_key`` round-trips
#: any value; label *keys* come from ``**labels`` kwargs and are therefore
#: identifiers, which never contain them.
_LABEL_SPECIALS = "\\,=}"


def _escape_label_value(value: str) -> str:
    if not any(c in value for c in _LABEL_SPECIALS):
        return value
    out = []
    for c in value:
        if c in _LABEL_SPECIALS:
            out.append("\\")
        out.append(c)
    return "".join(out)


def _unescape_label_value(value: str) -> str:
    if "\\" not in value:
        return value
    out = []
    it = iter(value)
    for c in it:
        if c == "\\":
            c = next(it, "\\")
        out.append(c)
    return "".join(out)


def _split_label_items(inner: str) -> List[str]:
    """Split the label block on unescaped commas."""
    items: List[str] = []
    buf: List[str] = []
    escaped = False
    for c in inner:
        if escaped:
            buf.append(c)
            escaped = False
        elif c == "\\":
            buf.append(c)
            escaped = True
        elif c == ",":
            items.append("".join(buf))
            buf = []
        else:
            buf.append(c)
    items.append("".join(buf))
    return items


def _flat_key(name: str, labels: LabelItems) -> str:
    if not labels:
        return name
    inner = ",".join(f"{k}={_escape_label_value(v)}" for k, v in labels)
    return f"{name}{{{inner}}}"


def parse_flat_key(key: str) -> Tuple[str, Dict[str, str]]:
    """Invert :meth:`MetricsRegistry.snapshot` keys back to (name, labels).

    Label values are backslash-unescaped, so keys produced by
    :func:`_flat_key` round-trip even when values contain ``,``, ``=``,
    ``}`` or ``\\`` (the trailing ``}`` of the key is never escaped — an
    escaped ``}`` at the end of a value is preceded by a backslash, which
    itself would have been doubled).
    """
    if not key.endswith("}") or "{" not in key:
        return key, {}
    name, _, inner = key[:-1].partition("{")
    labels: Dict[str, str] = {}
    for item in _split_label_items(inner):
        if not item:
            continue
        # Keys are identifiers, so the first `=` always ends the key.
        k, _, v = item.partition("=")
        labels[k] = _unescape_label_value(v)
    return name, labels


class Counter:
    """A monotonically increasing count of events."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, n: Union[int, float] = 1) -> None:
        if n < 0:
            raise ValueError(f"counters only go up (got {n})")
        self.value += n


class Gauge:
    """An instantaneous value (queue depth, table occupancy, threshold)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: float = 0.0

    def set(self, value: float) -> None:
        self.value = value


#: Default histogram bucket upper bounds (≤); the implicit +inf bucket
#: catches the tail.  Covers sub-millisecond event times through multi-second
#: latencies and small integer distributions alike.
DEFAULT_BOUNDS: Tuple[float, ...] = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 2.0, 5.0, 10.0, 30.0,
)


class Histogram:
    """A bucketed distribution (cumulative-style buckets, ``le`` bounds)."""

    __slots__ = ("bounds", "bucket_counts", "count", "total", "vmin", "vmax")

    def __init__(self, bounds: Sequence[float] = DEFAULT_BOUNDS) -> None:
        self.bounds: Tuple[float, ...] = tuple(bounds)
        if list(self.bounds) != sorted(self.bounds):
            raise ValueError("histogram bounds must be sorted")
        self.bucket_counts: List[int] = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.vmin = math.inf
        self.vmax = -math.inf

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        self.vmin = min(self.vmin, value)
        self.vmax = max(self.vmax, value)
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                self.bucket_counts[i] += 1
                return
        self.bucket_counts[-1] += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else math.nan

    def merge(self, other: "Histogram") -> None:
        if other.bounds != self.bounds:
            raise ValueError("cannot merge histograms with different bounds")
        for i, n in enumerate(other.bucket_counts):
            self.bucket_counts[i] += n
        self.count += other.count
        self.total += other.total
        self.vmin = min(self.vmin, other.vmin)
        self.vmax = max(self.vmax, other.vmax)

    def to_json_dict(self) -> Dict[str, object]:
        """Strict-JSON view: the empty histogram's ``vmin=inf``/``vmax=-inf``
        sentinels become ``null`` (the ``to_json_dict`` convention), never
        the invalid JSON tokens ``Infinity``/``-Infinity``."""
        empty = self.count == 0
        return {
            "count": self.count,
            "sum": self.total,
            "min": None if empty else self.vmin,
            "max": None if empty else self.vmax,
            "buckets": {
                "+inf" if math.isinf(b) else repr(b): n
                for b, n in zip(list(self.bounds) + [math.inf], self.bucket_counts)
            },
        }


Metric = Union[Counter, Gauge, Histogram]


class MetricsRegistry:
    """Named, labeled metrics with get-or-create semantics.

    ``counter``/``gauge``/``histogram`` return the live metric object, so a
    component can hold on to it and increment without re-resolving::

        whites = registry.counter("est.estimator.rejected_no_white", node=7)
        whites.inc()

    Snapshot / merge turn many per-node registries into one network view.
    """

    def __init__(self, validate_names: bool = True) -> None:
        self._metrics: Dict[MetricKey, Metric] = {}
        self._validate = validate_names

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def _get_or_create(self, name: str, labels: Dict[str, object], factory) -> Metric:
        if self._validate and not _NAME_RE.match(name):
            raise ValueError(
                f"metric name {name!r} does not follow layer.component.event"
            )
        key = (name, _label_items(labels))
        metric = self._metrics.get(key)
        if metric is None:
            metric = factory()
            self._metrics[key] = metric
        return metric

    def counter(self, name: str, **labels) -> Counter:
        metric = self._get_or_create(name, labels, Counter)
        if not isinstance(metric, Counter):
            raise TypeError(f"{name} already registered as {type(metric).__name__}")
        return metric

    def gauge(self, name: str, **labels) -> Gauge:
        metric = self._get_or_create(name, labels, Gauge)
        if not isinstance(metric, Gauge):
            raise TypeError(f"{name} already registered as {type(metric).__name__}")
        return metric

    def histogram(
        self, name: str, bounds: Sequence[float] = DEFAULT_BOUNDS, **labels
    ) -> Histogram:
        metric = self._get_or_create(name, labels, lambda: Histogram(bounds))
        if not isinstance(metric, Histogram):
            raise TypeError(f"{name} already registered as {type(metric).__name__}")
        return metric

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._metrics)

    def __iter__(self) -> Iterable[Tuple[str, LabelItems, Metric]]:
        for (name, labels), metric in sorted(self._metrics.items()):
            yield name, labels, metric

    def snapshot(self) -> Dict[str, float]:
        """Flat, JSON-safe view.  Histograms expand to ``_count``/``_sum``/
        ``_min``/``_max`` plus one ``_bucket{le=...}`` entry per bound."""
        out: Dict[str, float] = {}
        for name, labels, metric in self:
            if isinstance(metric, (Counter, Gauge)):
                out[_flat_key(name, labels)] = metric.value
            else:
                out[_flat_key(name + "_count", labels)] = metric.count
                out[_flat_key(name + "_sum", labels)] = metric.total
                if metric.count:
                    out[_flat_key(name + "_min", labels)] = metric.vmin
                    out[_flat_key(name + "_max", labels)] = metric.vmax
                for bound, n in zip(
                    list(metric.bounds) + [math.inf], metric.bucket_counts
                ):
                    le = "+inf" if math.isinf(bound) else repr(bound)
                    bucket_labels = tuple(sorted(labels + (("le", le),)))
                    out[_flat_key(name + "_bucket", bucket_labels)] = n
        return out

    def aggregate(self, name: str) -> float:
        """Sum of a counter/gauge across every label combination."""
        total = 0.0
        for metric_name, _, metric in self:
            if metric_name == name and isinstance(metric, (Counter, Gauge)):
                total += metric.value
        return total

    def merge(self, other: "MetricsRegistry") -> "MetricsRegistry":
        """Fold ``other`` into this registry (counters add, gauges take the
        other's value, histograms merge bucket-wise).  Returns ``self``."""
        for (name, labels), metric in other._metrics.items():
            if isinstance(metric, Counter):
                self.counter(name, **dict(labels)).inc(metric.value)
            elif isinstance(metric, Gauge):
                self.gauge(name, **dict(labels)).set(metric.value)
            else:
                self.histogram(name, bounds=metric.bounds, **dict(labels)).merge(metric)
        return self

    def render(self, prefix: str = "") -> str:
        """Human-readable dump (optionally filtered by name prefix)."""
        lines = []
        for key, value in self.snapshot().items():
            if prefix and not key.startswith(prefix):
                continue
            if isinstance(value, float) and value == int(value):
                value = int(value)
            lines.append(f"{key} = {value}")
        return "\n".join(lines) if lines else "(no metrics)"


def register_dataclass_counters(
    registry: MetricsRegistry, prefix: str, stats: object, **labels
) -> None:
    """Register every integer field of a stats dataclass as a counter.

    This is the bridge between the per-component stats dataclasses and the
    registry: ``register_dataclass_counters(reg, "link.mac", mac.stats,
    node=7)`` yields ``link.mac.tx_unicast{node=7}`` etc.  Non-numeric
    fields (lists of failures, nested objects) are skipped.
    """
    import dataclasses

    for f in dataclasses.fields(stats):
        value = getattr(stats, f.name)
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            continue
        registry.counter(f"{prefix}.{f.name}", **labels).inc(value)
