"""Per-run resource accounting: wall time, CPU time, peak RSS.

A run's *simulated* behavior is deterministic, but where the wall clock
and memory went is not — and that is exactly what capacity planning for
the sweep backbone needs.  :func:`measure_run` wraps one unit of work
(inside a runner worker process, or around a bench scenario) and returns
the deltas from ``resource.getrusage``:

* ``wall_s`` — elapsed real time (``perf_counter`` delta);
* ``cpu_user_s`` / ``cpu_sys_s`` / ``cpu_s`` — process CPU time deltas;
* ``max_rss_kb`` — peak resident set size in kB.  ``ru_maxrss`` is a
  process-lifetime high-water mark (Linux reports kB, macOS bytes — both
  normalized here), so for the *first* run in a worker it is the run's
  own peak; for later runs it can only grow, never shrink.

Everything degrades gracefully: on platforms without the ``resource``
module only ``wall_s`` (and ``process_time``-based CPU) is reported.
This module is deliberately wall-clock-dependent — it lives in
``repro.obs``, outside the deterministic simulation packages, and its
output never feeds back into simulated behavior.
"""

from __future__ import annotations

import sys
import time
from typing import Any, Dict, Optional, Tuple

try:  # pragma: no cover - import guard exercised only off-POSIX
    import resource as _resource
except ImportError:  # pragma: no cover
    _resource = None  # type: ignore[assignment]

#: Keys every resources dict carries (values are floats; kB for RSS).
RESOURCE_FIELDS = ("wall_s", "cpu_user_s", "cpu_sys_s", "cpu_s", "max_rss_kb")


def _rusage() -> Optional[Tuple[float, float, float]]:
    """(user CPU s, system CPU s, max RSS kB) for this process, or None."""
    if _resource is None:
        return None
    ru = _resource.getrusage(_resource.RUSAGE_SELF)
    max_rss_kb = float(ru.ru_maxrss)
    if sys.platform == "darwin":  # pragma: no cover - macOS reports bytes
        max_rss_kb /= 1024.0
    return ru.ru_utime, ru.ru_stime, max_rss_kb


class ResourceProbe:
    """Start/stop resource capture around one unit of work."""

    def __init__(self) -> None:
        self._wall0 = time.perf_counter()
        self._cpu0 = time.process_time()
        self._ru0 = _rusage()
        #: Filled by :meth:`stop` (and by ``__exit__``).
        self.result: Dict[str, float] = {}

    def stop(self) -> Dict[str, float]:
        wall_s = time.perf_counter() - self._wall0
        ru1 = _rusage()
        if self._ru0 is not None and ru1 is not None:
            user = max(0.0, ru1[0] - self._ru0[0])
            system = max(0.0, ru1[1] - self._ru0[1])
            max_rss_kb = ru1[2]
        else:  # pragma: no cover - no `resource` module
            user = max(0.0, time.process_time() - self._cpu0)
            system = 0.0
            max_rss_kb = 0.0
        self.result = {
            "wall_s": wall_s,
            "cpu_user_s": user,
            "cpu_sys_s": system,
            "cpu_s": user + system,
            "max_rss_kb": max_rss_kb,
        }
        return self.result

    def __enter__(self) -> "ResourceProbe":
        return self

    def __exit__(self, *exc: object) -> None:
        self.stop()


def measure_run(fn: Any, *args: Any, **kwargs: Any) -> Tuple[Any, Dict[str, float]]:
    """Run ``fn(*args, **kwargs)`` under a probe; return (result, resources)."""
    probe = ResourceProbe()
    value = fn(*args, **kwargs)
    return value, probe.stop()


def attach_resources(result: Any, resources: Dict[str, float]) -> bool:
    """Duck-typed attach: set ``result.resources`` when the slot exists.

    Returns True when attached.  Results that predate the field (or
    foreign result types) are left untouched rather than grown surprise
    attributes — the runner calls this on whatever the task returned.
    """
    if hasattr(result, "resources"):
        try:
            result.resources = dict(resources)
        except AttributeError:  # pragma: no cover - frozen/slotted results
            return False
        return True
    return False


def merge_resources(
    total: Dict[str, float], one: Optional[Dict[str, Any]]
) -> Dict[str, float]:
    """Fold one run's resources into a sweep aggregate (in place).

    CPU and wall seconds add; ``max_rss_kb`` takes the max — worker
    processes run concurrently, so their peaks do not sum meaningfully.
    """
    if not one:
        return total
    for key in ("wall_s", "cpu_user_s", "cpu_sys_s", "cpu_s"):
        value = one.get(key)
        if isinstance(value, (int, float)):
            total[key] = total.get(key, 0.0) + float(value)
    rss = one.get("max_rss_kb")
    if isinstance(rss, (int, float)):
        total["max_rss_kb"] = max(total.get("max_rss_kb", 0.0), float(rss))
    return total


def format_resources(resources: Optional[Dict[str, float]]) -> str:
    """Terminal-friendly one-liner (``cpu=1.2s rss=83MB``)."""
    if not resources:
        return "(no resource data)"
    parts = []
    cpu = resources.get("cpu_s")
    if cpu is not None:
        parts.append(f"cpu={cpu:.2f}s")
    wall = resources.get("wall_s")
    if wall is not None:
        parts.append(f"wall={wall:.2f}s")
    rss = resources.get("max_rss_kb")
    if rss:
        parts.append(f"rss={rss / 1024.0:.0f}MB")
    return " ".join(parts) if parts else "(no resource data)"


__all__ = [
    "RESOURCE_FIELDS",
    "ResourceProbe",
    "attach_resources",
    "format_resources",
    "measure_run",
    "merge_resources",
]
