"""Objective adapters: parameter points -> estimator configs -> scores.

The campaign orchestrator tunes the estimator's constants (EWMA α, ku, kb,
table size, white-bit threshold) as plain ``{name: value}`` points.  This
module is the bridge: it folds such a point into an
:class:`~repro.core.estimator.EstimatorConfig` (on top of a named preset)
and scores it on the offline accuracy harness
(:mod:`repro.estimators.accuracy`), returning the deterministic summary
dict the optimizer minimizes.

The accuracy/cost trade-off the paper negotiates by hand becomes two
summary keys: ``mre`` (mean relative ETX error against ground truth — the
accuracy objective) and ``beacon_tx``/``data_tx`` (transmissions consumed —
the cost objective); a sweep or optimizer spec names either, or combines
them with a secondary-objective weight.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Any, Dict, Tuple

from repro.core.estimator import EstimatorConfig
from repro.estimators.accuracy import (
    AccuracyScenario,
    evaluate,
    step_scenario,
    steady_scenario,
)
from repro.estimators.presets import PRESETS

#: EstimatorConfig fields a campaign point may set.  ``table_size`` may be
#: ``None`` (unconstrained table); integer fields are coerced from JSON
#: numbers so ``{"ku": 5.0}`` in a spec file means ``ku=5``.
TUNABLE_INT_FIELDS = ("ku", "kb", "table_size", "reboot_gap", "immature_evict_expected")
TUNABLE_FLOAT_FIELDS = (
    "alpha_outer",
    "alpha_beacon",
    "max_etx_sample",
    "evict_etx_threshold",
)
TUNABLE_FIELDS = TUNABLE_INT_FIELDS + TUNABLE_FLOAT_FIELDS


def split_estimator_params(params: Dict[str, Any]) -> Tuple[Dict[str, Any], Dict[str, Any]]:
    """Split a parameter point into (estimator overrides, everything else)."""
    est: Dict[str, Any] = {}
    rest: Dict[str, Any] = {}
    for name, value in sorted(params.items()):
        if name in TUNABLE_FIELDS:
            est[name] = value
        else:
            rest[name] = value
    return est, rest


def estimator_config_from_params(
    params: Dict[str, Any], preset: str = "4b"
) -> EstimatorConfig:
    """An :class:`EstimatorConfig`: the named preset with ``params`` applied."""
    try:
        base = PRESETS[preset]
    except KeyError:
        raise ValueError(
            f"unknown estimator preset {preset!r}; choose from {sorted(PRESETS)}"
        ) from None
    overrides: Dict[str, Any] = {}
    for name, value in sorted(params.items()):
        if name not in TUNABLE_FIELDS:
            raise ValueError(
                f"unknown estimator parameter {name!r}; tunable: {sorted(TUNABLE_FIELDS)}"
            )
        if value is None and name == "table_size":
            overrides[name] = None
        elif name in TUNABLE_INT_FIELDS:
            overrides[name] = int(value)
        else:
            overrides[name] = float(value)
    return dataclasses.replace(base, **overrides)


def scenario_from_params(params: Dict[str, Any]) -> AccuracyScenario:
    """Build the scripted-link scenario an ``accuracy`` spec names.

    ``scenario`` selects the trace shape: ``"steady"`` (constant PRR
    ``prr``) or ``"step"`` (PRR ``high`` dropping to ``low`` at
    ``step_at_s`` — the paper's burst-loss trap, which rewards agile
    windows and punishes heavy EWMA history).
    """
    shape = str(params.get("scenario", "steady"))
    common: Dict[str, Any] = {}
    for name in ("duration_s", "warmup_s", "beacon_period_s", "data_rate_pps", "sample_period_s"):
        if params.get(name) is not None:
            common[name] = float(params[name])
    if params.get("seed") is not None:
        common["seed"] = int(params["seed"])
    if shape == "steady":
        return steady_scenario(float(params.get("prr", 0.7)), **common)
    if shape == "step":
        return step_scenario(
            high=float(params.get("high", 0.9)),
            low=float(params.get("low", 0.3)),
            at_s=float(params.get("step_at_s", 300.0)),
            **common,
        )
    raise ValueError(f"unknown accuracy scenario {shape!r}; choose 'steady' or 'step'")


def accuracy_summary(config: EstimatorConfig, scenario: AccuracyScenario) -> Dict[str, Any]:
    """Run one estimator over the scenario and fold the score into a summary.

    Keys (all deterministic in the spec):

    * ``mre`` — mean relative ETX error over scored samples (the accuracy
      objective; NaN when no sample produced an estimate).
    * ``availability`` — fraction of scored instants with any estimate.
    * ``detection_delay_s`` — reaction time to the largest PRR step (NaN
      when the trace has no step or the estimate never crossed).
    * ``beacon_tx`` / ``data_tx`` — transmissions consumed by the run (the
      cost objective: bigger windows are cheaper but slower).
    * ``samples`` — scored sample count (sanity floor for sweeps).
    """
    result = evaluate(config, scenario)
    cost = result.cost_counters
    delay = result.detection_delay_s
    return {
        "mre": result.mean_relative_error(),
        "availability": result.availability(),
        "detection_delay_s": math.nan if delay is None else delay,
        "beacon_tx": cost.get("beacon_tx", 0),
        "data_tx": cost.get("data_tx", 0),
        "samples": len(result.samples),
        "_events_run": cost.get("events_run", 0),
    }
