"""Offline estimator-accuracy harness.

Section 2 of the paper argues each layer's estimator has characteristic
*errors*, not just costs: broadcast-probe estimators are slow to adapt and
measure each direction separately; the ack bit measures the true
bidirectional delivery probability at data rate.  This harness quantifies
those claims: it drives a single estimator over a scripted
:class:`~repro.phy.trace_link.LinkTrace` (beacons at a fixed period, data
at a fixed rate) and scores the estimate against ground truth.

Ground truth for a symmetric scripted link with PRR ``p`` is
``ETX = 1/p²``: a successful *acknowledged* transmission needs the data
frame and the ack to both survive.  A unidirectional beacon estimator can
at best learn ``1/p`` — structurally biased low on lossy links — which is
why 4B treats beacons as bootstrap values and lets the ack bit refine them.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


from repro.core.estimator import EstimatorConfig, HybridLinkEstimator
from repro.link.frame import BROADCAST, NetworkFrame, le_wrap
from repro.link.mac import Mac
from repro.phy.radio import Radio
from repro.phy.trace_link import LinkTrace, TraceMedium
from repro.sim.engine import Engine
from repro.sim.rng import RngManager

ME, NEIGHBOR = 0, 1


@dataclass(frozen=True)
class AccuracyScenario:
    """One scripted link + traffic pattern."""

    name: str
    trace: LinkTrace
    duration_s: float = 600.0
    #: Score only after this much settling time.
    warmup_s: float = 120.0
    beacon_period_s: float = 10.0
    #: Data packets per second from the estimator's node (0 = quiet network).
    data_rate_pps: float = 1.0
    sample_period_s: float = 5.0
    seed: int = 9


@dataclass
class AccuracyResult:
    label: str
    scenario: AccuracyScenario
    #: (t, estimated ETX or None, true ETX)
    samples: List[Tuple[float, Optional[float], float]] = field(default_factory=list)
    #: Time from a scripted PRR step until the estimate crossed the midpoint
    #: between the old and new truth (None = never, or no step in the trace).
    detection_delay_s: Optional[float] = None
    #: Deterministic cost accounting for the run: ``beacon_tx`` (probe
    #: frames the neighbor broadcast), ``data_tx`` (unicast transmissions
    #: the estimator's node spent), ``acks_received``, ``events_run`` —
    #: what a campaign objective weighs against accuracy.
    cost_counters: Dict[str, int] = field(default_factory=dict)

    def mean_relative_error(self) -> float:
        """Mean |est − true| / true over scored samples."""
        scored = [
            abs(est - true) / true
            for t, est, true in self.samples
            if est is not None and t >= self.scenario.warmup_s
        ]
        return sum(scored) / len(scored) if scored else math.nan

    def availability(self) -> float:
        """Fraction of scored instants with any estimate at all."""
        relevant = [s for s in self.samples if s[0] >= self.scenario.warmup_s]
        if not relevant:
            return 0.0
        return sum(1 for _, est, _ in relevant if est is not None) / len(relevant)


def true_etx(prr: float) -> float:
    """Ground-truth acknowledged-delivery ETX for a symmetric link."""
    if prr <= 0.0:
        return math.inf
    return 1.0 / (prr * prr)


def evaluate(
    config: EstimatorConfig,
    scenario: AccuracyScenario,
    label: str = "",
) -> AccuracyResult:
    """Run one estimator over the scenario and score it."""
    engine = Engine()
    rng = RngManager(scenario.seed)
    medium = TraceMedium(engine, rng)
    macs: Dict[int, Mac] = {}
    for nid in (ME, NEIGHBOR):
        mac = Mac(engine, medium, Radio(node_id=nid), rng.stream("mac", nid))
        medium.attach(mac)
        macs[nid] = mac
    medium.set_symmetric_link(ME, NEIGHBOR, scenario.trace)
    estimator = HybridLinkEstimator(macs[ME], config, rng.stream("est"))

    neighbor_seq = [0]

    def neighbor_beacon() -> None:
        payload = NetworkFrame(src=NEIGHBOR, dst=BROADCAST, length_bytes=16)
        macs[NEIGHBOR].send(le_wrap(payload, le_seq=neighbor_seq[0]))
        neighbor_seq[0] = (neighbor_seq[0] + 1) % 256
        engine.schedule(scenario.beacon_period_s, neighbor_beacon)

    engine.schedule(0.1, neighbor_beacon)

    if scenario.data_rate_pps > 0:
        interval = 1.0 / scenario.data_rate_pps

        def send_data() -> None:
            estimator.send(NetworkFrame(src=ME, dst=NEIGHBOR, length_bytes=30))
            engine.schedule(interval, send_data)

        engine.schedule(0.5, send_data)

    result = AccuracyResult(label=label or "estimator", scenario=scenario)

    def sample() -> None:
        est = estimator.link_quality(NEIGHBOR)
        truth = true_etx(scenario.trace.prr_at(engine.now))
        result.samples.append((engine.now, None if math.isinf(est) else est, truth))
        engine.schedule(scenario.sample_period_s, sample)

    engine.schedule(scenario.sample_period_s, sample)
    engine.run_until(scenario.duration_s)
    result.detection_delay_s = _detection_delay(result)
    result.cost_counters = {
        "beacon_tx": macs[NEIGHBOR].stats.tx_broadcast,
        "data_tx": macs[ME].stats.tx_unicast,
        "acks_received": macs[ME].stats.acks_received,
        "events_run": engine.events_run,
    }
    return result


def _detection_delay(result: AccuracyResult) -> Optional[float]:
    """Delay until the estimate crosses the old/new-truth midpoint after the
    largest truth step in the trace (None when the trace has no real step)."""
    samples = result.samples
    step_idx = None
    step_size = 0.0
    for i in range(1, len(samples)):
        prev_truth, truth = samples[i - 1][2], samples[i][2]
        if math.isinf(prev_truth) or math.isinf(truth):
            continue
        if abs(truth - prev_truth) > step_size:
            step_size = abs(truth - prev_truth)
            step_idx = i
    if step_idx is None or step_size < 0.5:
        return None
    t_step = samples[step_idx][0]
    old_truth = samples[step_idx - 1][2]
    new_truth = samples[step_idx][2]
    midpoint = (old_truth + new_truth) / 2.0
    rising = new_truth > old_truth
    for t, est, _ in samples[step_idx:]:
        if est is None:
            continue
        if (rising and est >= midpoint) or (not rising and est <= midpoint):
            return t - t_step
    return None


# ---------------------------------------------------------------------------
# Canonical scenarios
# ---------------------------------------------------------------------------
def steady_scenario(prr: float, **kwargs) -> AccuracyScenario:
    return AccuracyScenario(name=f"steady-{prr:.2f}", trace=LinkTrace.constant(prr), **kwargs)


def step_scenario(high: float = 0.9, low: float = 0.3, at_s: float = 300.0, **kwargs) -> AccuracyScenario:
    kwargs.setdefault("duration_s", 600.0)
    return AccuracyScenario(
        name=f"step-{high:.1f}to{low:.1f}",
        trace=LinkTrace([(0.0, high), (at_s, low)]),
        **kwargs,
    )
