"""Named estimator presets spanning the paper's Figure 6 design space."""

from repro.estimators.presets import (
    PRESETS,
    ctp_stock,
    ctp_unconstrained,
    ctp_unidir_ack,
    ctp_white_compare,
    four_bit,
)

__all__ = [
    "PRESETS",
    "ctp_stock",
    "ctp_unconstrained",
    "ctp_unidir_ack",
    "ctp_white_compare",
    "four_bit",
]
