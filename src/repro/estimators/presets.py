"""Named estimator configurations — the design space of the paper's Figure 6.

Each preset is an :class:`~repro.core.estimator.EstimatorConfig` for the
shared hybrid engine:

* ``CTP_STOCK`` — the TinyOS 2 CTP estimator the paper starts from:
  broadcast-probe *bidirectional* ETX (forward PRR measured from beacon
  sequence gaps, reverse PRR learned from beacon footers), no ack bit, and
  a conservative displace-the-worst table policy.  Its table size caps node
  in-degree, the failure Figure 2(a) shows.
* ``CTP_UNCONSTRAINED`` — the same with an unlimited table (Figure 2(c)).
* ``CTP_UNIDIR_ACK`` — adds the **ack bit**: the hybrid unicast/beacon
  estimator with unidirectional beacons (in-degree decoupled from table
  size) but the stock table policy.
* ``CTP_WHITE_COMPARE`` — adds only the **white + compare bits** to the
  stock bidirectional estimator (better table admission, no ack stream).
* ``FOUR_BIT`` — all four bits: the paper's 4B prototype.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.estimator import EstimatorConfig

_DEFAULT_TABLE = 10


def ctp_stock(table_size: Optional[int] = _DEFAULT_TABLE) -> EstimatorConfig:
    """Stock CTP/T2 broadcast-probe bidirectional estimator."""
    return EstimatorConfig(
        table_size=table_size,
        use_ack_stream=False,
        bidirectional_beacons=True,
        send_footers=True,
        use_standard_replacement=True,
        use_white_compare=False,
    )


def ctp_unconstrained() -> EstimatorConfig:
    """Stock estimator with an unrestricted link table (Figure 2(c))."""
    return ctp_stock(table_size=None)


def ctp_unidir_ack(table_size: Optional[int] = _DEFAULT_TABLE) -> EstimatorConfig:
    """CTP + the ack bit: hybrid unidirectional estimation, stock table."""
    return EstimatorConfig(
        table_size=table_size,
        use_ack_stream=True,
        bidirectional_beacons=False,
        send_footers=False,
        use_standard_replacement=True,
        use_white_compare=False,
    )


def ctp_white_compare(table_size: Optional[int] = _DEFAULT_TABLE) -> EstimatorConfig:
    """CTP + the white and compare bits only (no ack stream)."""
    return EstimatorConfig(
        table_size=table_size,
        use_ack_stream=False,
        bidirectional_beacons=True,
        send_footers=True,
        use_standard_replacement=True,
        use_white_compare=True,
    )


def four_bit(table_size: Optional[int] = _DEFAULT_TABLE) -> EstimatorConfig:
    """The full 4B estimator (all four bits)."""
    return EstimatorConfig(
        table_size=table_size,
        use_ack_stream=True,
        bidirectional_beacons=False,
        send_footers=False,
        use_standard_replacement=True,
        use_white_compare=True,
    )


#: Registry used by the experiment harness; keys are protocol labels.
PRESETS: Dict[str, EstimatorConfig] = {
    "ctp": ctp_stock(),
    "ctp-unconstrained": ctp_unconstrained(),
    "ctp-unidir": ctp_unidir_ack(),
    "ctp-white": ctp_white_compare(),
    "4b": four_bit(),
}
