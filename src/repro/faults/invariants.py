"""Structural invariants checked while a simulation runs.

The checker piggybacks on any :class:`~repro.sim.network.CollectionNetwork`
(``SimConfig(check_invariants=True)``) and asserts, at fault boundaries, on
a periodic timer, and once at the end of the run:

1. **Pin guarantee** — an entry the network layer pinned is never evicted
   from the estimator's neighbor table (only enforced for estimators whose
   config honors the pin bit).  Tracked via ``pin``/``unpin`` wraps, so a
   broken eviction policy is caught even though it deletes entries behind
   the table API's back.
2. **ETX sanity** — every mature estimate is finite and in
   ``[1, max_etx_sample]`` (one transmission is the physical floor; samples
   are capped, and an EWMA of capped samples cannot escape the cap).
3. **Dead nodes are silent** — a node between crash and reboot never puts a
   frame on the air (checked at ``medium.start_transmission``, so a missing
   cancel anywhere in the MAC shows up immediately).
4. **Loop-free routing at quiescence** — at the end of the run the parent
   graph contains no cycle (transient mid-run loops are legal; CTP's cost
   gradient repairs them).  Skipped under mobility: a network still moving
   at the final instant has no quiescent state, so an end-of-run snapshot
   loop is exactly the legal transient kind (estimates lag motion).

All checks are read-only and consume no RNG, so enabling the checker never
changes simulated behavior — only the engine's event count.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Any, Dict, List, Set

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.estimator import HybridLinkEstimator
    from repro.sim.network import CollectionNetwork


class InvariantViolation(AssertionError):
    """A structural invariant failed.  The simulation is not trustworthy."""


class InvariantChecker:
    """Asserts structural properties of a running collection network."""

    def __init__(self, network: "CollectionNetwork", period_s: float = 15.0) -> None:
        self.network = network
        self.period_s = period_s
        self.checks_run = 0
        #: Violation messages seen so far (the first one also raises).
        self.violations: List[str] = []
        #: Per node: addresses the network layer currently has pinned.
        self._expected_pins: Dict[int, Set[int]] = {
            nid: set() for nid in sorted(network.nodes)
        }
        self._installed = False

    # ------------------------------------------------------------------
    # Installation
    # ------------------------------------------------------------------
    def install(self) -> None:
        """Wrap the hooks and schedule the periodic + final checks."""
        if self._installed:
            return
        self._installed = True
        network = self.network
        for nid in sorted(network.nodes):
            estimator = network.nodes[nid].estimator
            if estimator is not None and estimator.config.honor_pin_bit:
                self._wrap_pins(nid, estimator)
        injector = network.fault_injector
        if injector is not None:
            injector.on_event.append(self._on_fault_event)
            self._wrap_transmissions()
        t = self.period_s
        while t < network.config.duration_s:
            network.engine.schedule_at(t, self._periodic)
            t += self.period_s
        network.on_run_end.append(self._final)

    def _wrap_pins(self, nid: int, estimator: "HybridLinkEstimator") -> None:
        expected = self._expected_pins[nid]
        orig_pin = estimator.pin
        orig_unpin = estimator.unpin

        def pin(neighbor: int) -> bool:
            ok = orig_pin(neighbor)
            if ok:
                expected.add(neighbor)
            return ok

        def unpin(neighbor: int) -> bool:
            expected.discard(neighbor)
            return orig_unpin(neighbor)

        estimator.pin = pin  # type: ignore[method-assign]
        estimator.unpin = unpin  # type: ignore[method-assign]

        orig_remove = estimator.table.remove

        def remove(addr: int) -> bool:
            if addr in expected:
                self._fail(f"node {nid}: pinned entry {addr} explicitly removed")
            return orig_remove(addr)

        estimator.table.remove = remove  # type: ignore[method-assign]

    def _wrap_transmissions(self) -> None:
        injector = self.network.fault_injector
        assert injector is not None
        medium = self.network.medium
        orig_start = medium.start_transmission
        crashed = injector.crashed

        def start_transmission(sender_id: int, frame: Any) -> float:
            if sender_id in crashed:
                self._fail(
                    f"dead node {sender_id} transmitted {type(frame).__name__} "
                    f"at t={self.network.engine.now:.6f}"
                )
            return orig_start(sender_id, frame)

        medium.start_transmission = start_transmission  # type: ignore[method-assign]

    # ------------------------------------------------------------------
    # Triggers
    # ------------------------------------------------------------------
    def _on_fault_event(self, kind: str, now: float, fields: Dict[str, Any]) -> None:
        if kind in ("crash", "reboot"):
            # The node's RAM (and thus every pin it held) is gone; the
            # expectation resets with it.
            self._expected_pins[fields["node"]].clear()
        self.check_now()

    def _periodic(self) -> None:
        self.check_now()

    def _final(self, network: "CollectionNetwork") -> None:
        self.check_now(final=True)

    # ------------------------------------------------------------------
    # Checks
    # ------------------------------------------------------------------
    def check_now(self, final: bool = False) -> None:
        """Run every applicable invariant; raise on the first batch of
        failures (also recorded in :attr:`violations`)."""
        self.checks_run += 1
        failures: List[str] = []
        self._check_pins(failures)
        self._check_etx(failures)
        if final and getattr(self.network, "mobility", None) is None:
            self._check_loops(failures)
        if failures:
            self.violations.extend(failures)
            raise InvariantViolation("; ".join(failures))

    def _check_pins(self, failures: List[str]) -> None:
        for nid in sorted(self._expected_pins):
            expected = self._expected_pins[nid]
            if not expected:
                continue
            estimator = self.network.nodes[nid].estimator
            assert estimator is not None  # only estimator nodes are tracked
            for addr in sorted(expected):
                entry = estimator.table.find(addr)
                if entry is None:
                    failures.append(
                        f"node {nid}: pinned entry {addr} was evicted from the table"
                    )
                elif not entry.pinned:
                    failures.append(
                        f"node {nid}: entry {addr} lost its pin bit without an unpin"
                    )

    def _check_etx(self, failures: List[str]) -> None:
        for nid in sorted(self.network.nodes):
            estimator = self.network.nodes[nid].estimator
            if estimator is None:
                continue
            cap = estimator.config.max_etx_sample + 1e-9
            for entry in sorted(estimator.table, key=lambda e: e.addr):
                if not entry.mature:
                    continue
                etx = entry.etx
                if math.isnan(etx) or math.isinf(etx):
                    failures.append(f"node {nid}: ETX for {entry.addr} is {etx}")
                elif etx < 1.0 - 1e-9:
                    failures.append(
                        f"node {nid}: ETX for {entry.addr} is {etx:.4f} < 1"
                    )
                elif etx > cap:
                    failures.append(
                        f"node {nid}: ETX for {entry.addr} is {etx:.4f} > sample cap"
                    )

    def _check_loops(self, failures: List[str]) -> None:
        parents = self.network.parent_map()
        roots = set(self.network.roots)
        for nid in sorted(parents):
            cursor = parents.get(nid)
            seen = {nid}
            while cursor is not None and cursor not in roots:
                if cursor in seen:
                    failures.append(f"routing loop through node {cursor} at quiescence")
                    break
                seen.add(cursor)
                cursor = parents.get(cursor)

    def _fail(self, message: str) -> None:
        self.violations.append(message)
        raise InvariantViolation(message)
