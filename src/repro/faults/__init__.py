"""Deterministic fault injection and invariant checking (``repro.faults``).

The paper's core claim is that 4B stays accurate *under dynamics*: beacons
re-bootstrap estimates after a node reboots, the pin bit protects routes
under table pressure, and the ack bit tracks links that suddenly degrade.
This package turns those dynamics into first-class, reproducible scenarios:

* :mod:`repro.faults.schedule` — typed fault events (node crash/reboot,
  link blackout, stepwise quality shifts, interference bursts) bundled in a
  :class:`~repro.faults.schedule.FaultSchedule` that round-trips through
  JSON and hashes canonically (cache keys stay correct).
* :mod:`repro.faults.presets` — named scenario generators
  (``reboot_storm``, ``table_pressure``, ``flaky_burst``) driven by the
  run's own :class:`~repro.sim.rng.RngManager` streams, so a preset + seed
  fully determines the schedule.
* :mod:`repro.faults.injector` — applies a schedule to a built
  :class:`~repro.sim.network.CollectionNetwork` through the engine's event
  queue (``SimConfig(faults=...)`` wires it automatically).
* :mod:`repro.faults.invariants` — a checker that runs alongside any
  simulation and asserts structural properties at fault boundaries and on a
  periodic timer (``SimConfig(check_invariants=True)``).

Determinism contract: every random draw comes from dedicated
``("faults", ...)`` RNG streams, so enabling faults never perturbs the
draws of a fault-free run, and two runs of the same seed + schedule are
bit-identical (D001 applies to this package).
"""

from repro.faults.injector import FaultInjector, FaultStats
from repro.faults.invariants import InvariantChecker, InvariantViolation
from repro.faults.presets import PRESET_NAMES, resolve_schedule
from repro.faults.schedule import (
    FaultSchedule,
    InterferenceBurst,
    LinkBlackout,
    NodeCrash,
    NodeReboot,
    QualityShift,
)

__all__ = [
    "FaultInjector",
    "FaultStats",
    "FaultSchedule",
    "InterferenceBurst",
    "InvariantChecker",
    "InvariantViolation",
    "LinkBlackout",
    "NodeCrash",
    "NodeReboot",
    "PRESET_NAMES",
    "QualityShift",
    "resolve_schedule",
]
