"""Named fault-scenario generators.

A preset is a function from run shape (duration, node set, positions) and a
dedicated RNG stream to a concrete :class:`~repro.faults.schedule.FaultSchedule`.
All draws come from ``rng.stream("faults", "preset", <name>)``, so the same
master seed always yields the same schedule and the draws never perturb any
other stream in the run.

``resolve_schedule`` is the single entry point used by
:class:`~repro.sim.network.CollectionNetwork`: it accepts a preset name, a
path to a JSON scenario file, or an already-built ``FaultSchedule``.
"""

from __future__ import annotations

from pathlib import Path
from typing import Callable, Dict, List, Sequence, Tuple, Union

from repro.faults.schedule import (
    FaultEvent,
    FaultSchedule,
    InterferenceBurst,
    LinkBlackout,
    NodeCrash,
    QualityShift,
)
from repro.sim.rng import RngManager


def _active_window(duration_s: float, warmup_s: float, drain_s: float) -> Tuple[float, float]:
    """Window inside which faults are injected: after warmup, with enough
    runway before the drain for the network to show recovery."""
    start = warmup_s
    end = max(warmup_s + 1.0, duration_s - drain_s - 45.0)
    return start, end


def _non_roots(node_ids: Sequence[int], roots: Sequence[int]) -> List[int]:
    root_set = frozenset(roots)
    return [nid for nid in sorted(node_ids) if nid not in root_set]


def _centroid(positions: Dict[int, Tuple[float, float]]) -> Tuple[float, float]:
    if not positions:
        return 0.0, 0.0
    xs = [positions[nid][0] for nid in sorted(positions)]
    ys = [positions[nid][1] for nid in sorted(positions)]
    return sum(xs) / len(xs), sum(ys) / len(ys)


def _preset_reboot_storm(
    *,
    duration_s: float,
    warmup_s: float,
    drain_s: float,
    node_ids: Sequence[int],
    roots: Sequence[int],
    positions: Dict[int, Tuple[float, float]],
    rng: RngManager,
) -> FaultSchedule:
    """Each non-root node crashes with probability 0.5 and reboots 15-30 s
    later with all RAM state lost — the paper's bootstrap scenario at scale."""
    stream = rng.stream("faults", "preset", "reboot_storm")
    start, end = _active_window(duration_s, warmup_s, drain_s)
    events: List[FaultEvent] = []
    for nid in _non_roots(node_ids, roots):
        if stream.random() >= 0.5:
            continue
        crash_at = stream.uniform(start, end)
        down_for = stream.uniform(15.0, 30.0)
        events.append(NodeCrash(at_s=crash_at, node=nid, reboot_at_s=crash_at + down_for))
    events.sort(key=lambda e: (e.at_s, e.node))  # type: ignore[union-attr]
    return FaultSchedule(events=tuple(events), name="reboot_storm")


def _preset_table_pressure(
    *,
    duration_s: float,
    warmup_s: float,
    drain_s: float,
    node_ids: Sequence[int],
    roots: Sequence[int],
    positions: Dict[int, Tuple[float, float]],
    rng: RngManager,
) -> FaultSchedule:
    """Rounds of ±4 dB node-level quality shifts.  Boosting marginal nodes
    makes *more* neighbors decodable than the 10-entry table holds, so the
    white-bit/compare/pin eviction policy is exercised continuously."""
    stream = rng.stream("faults", "preset", "table_pressure")
    start, end = _active_window(duration_s, warmup_s, drain_s)
    candidates = _non_roots(node_ids, roots)
    events: List[FaultEvent] = []
    rounds = 6
    for rnd in range(rounds):
        at = start + (end - start) * (rnd + 1) / (rounds + 1)
        picks = min(3, len(candidates))
        chosen = stream.sample(candidates, picks) if picks else []
        for nid in sorted(chosen):
            delta = 4.0 if stream.random() < 0.5 else -4.0
            events.append(QualityShift(at_s=at, delta_db=delta, node_a=nid))
    return FaultSchedule(events=tuple(events), name="table_pressure")


def _preset_flaky_burst(
    *,
    duration_s: float,
    warmup_s: float,
    drain_s: float,
    node_ids: Sequence[int],
    roots: Sequence[int],
    positions: Dict[int, Tuple[float, float]],
    rng: RngManager,
) -> FaultSchedule:
    """One ~10 s network-wide blackout mid-run plus two ~20 s interference
    bursts near the network centroid: the abrupt-outage shapes that expose
    moving-average estimator lag."""
    stream = rng.stream("faults", "preset", "flaky_burst")
    start, end = _active_window(duration_s, warmup_s, drain_s)
    span = end - start
    cx, cy = _centroid(positions)
    events: List[FaultEvent] = []

    blackout_at = start + span * stream.uniform(0.4, 0.6)
    events.append(LinkBlackout(start_s=blackout_at, end_s=blackout_at + 10.0))

    for frac in (0.15, 0.7):
        burst_at = start + span * (frac + stream.uniform(0.0, 0.1))
        events.append(
            InterferenceBurst(
                start_s=burst_at,
                end_s=burst_at + 20.0,
                x=cx + stream.uniform(-3.0, 3.0),
                y=cy + stream.uniform(-3.0, 3.0),
                power_dbm=-3.0,
            )
        )
    events.sort(key=lambda e: (getattr(e, "start_s", getattr(e, "at_s", 0.0))))
    return FaultSchedule(events=tuple(events), name="flaky_burst")


_PresetFn = Callable[..., FaultSchedule]

_PRESETS: Dict[str, _PresetFn] = {
    "reboot_storm": _preset_reboot_storm,
    "table_pressure": _preset_table_pressure,
    "flaky_burst": _preset_flaky_burst,
}

#: Stable, sorted preset names (CLI choices, error messages).
PRESET_NAMES: Tuple[str, ...] = tuple(sorted(_PRESETS))


def resolve_schedule(
    spec: Union[str, FaultSchedule],
    *,
    duration_s: float,
    warmup_s: float,
    drain_s: float,
    node_ids: Sequence[int],
    roots: Sequence[int],
    positions: Dict[int, Tuple[float, float]],
    rng: RngManager,
) -> FaultSchedule:
    """Turn a fault spec into a concrete schedule.

    ``spec`` may be a preset name, a path to a JSON scenario file, or a
    ``FaultSchedule`` (returned as-is).
    """
    if isinstance(spec, FaultSchedule):
        return spec
    if spec in _PRESETS:
        return _PRESETS[spec](
            duration_s=duration_s,
            warmup_s=warmup_s,
            drain_s=drain_s,
            node_ids=node_ids,
            roots=roots,
            positions=positions,
            rng=rng,
        )
    path = Path(spec)
    if path.suffix == ".json" or path.exists():
        return FaultSchedule.from_json_file(path)
    raise ValueError(
        f"unknown fault spec {spec!r}: not a preset {PRESET_NAMES} and not a JSON file"
    )
