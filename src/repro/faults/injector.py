"""Applies a :class:`~repro.faults.schedule.FaultSchedule` to a built network.

The injector is constructed by :class:`~repro.sim.network.CollectionNetwork`
before the medium is finalized (so burst interferers get candidate rows) and
armed after boot scheduling.  Every fault lands through the engine's event
queue, and every random draw comes from ``("faults", ...)`` RNG streams —
fault-free runs are untouched, and faulted runs are bit-reproducible.

Crash semantics (what a mote's RAM loss actually wipes):

================  =====================================================
layer             on crash / on reboot
================  =====================================================
MAC               in-flight frame, timers dropped; radio off → on
estimator         neighbor table, beacon seq, footer rotation wiped
routing           route info, parent, trickle stopped → restarted at i_min
forwarding        queue + duplicate cache wiped (``_seq`` survives — the
                  sink dedups on ``(origin, seq)``)
application       source stopped → restarted (fresh send phase)
stats/counters    survive — they are the testbed's serial log, not RAM
================  =====================================================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Dict, List, Set

from repro.faults.schedule import (
    FaultSchedule,
    InterferenceBurst,
    LinkBlackout,
    NodeCrash,
    NodeReboot,
    QualityShift,
)
from repro.phy.noise import INTERFERER_ID_BASE, WindowedInterferer

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs.metrics import MetricsRegistry
    from repro.sim.network import CollectionNetwork

#: Fault-scheduled interferers live above the testbed-profile interferers.
FAULT_INTERFERER_ID_BASE = INTERFERER_ID_BASE + 5000

#: Fault-event observer: ``(kind, time_s, fields)``.
FaultObserver = Callable[[str, float, Dict[str, Any]], None]


@dataclass
class FaultStats:
    """Injector counters, exported as ``faults.injector.*`` obs metrics."""

    node_crashes: int = 0
    node_reboots: int = 0
    blackouts_started: int = 0
    blackouts_ended: int = 0
    quality_shifts: int = 0
    bursts_started: int = 0
    #: Receptions suppressed by blackout windows (synced from the medium).
    blackout_drops: int = 0

    METRICS_PREFIX = "faults.injector"

    def register_into(self, registry: "MetricsRegistry", **labels: str) -> None:
        """Register every counter as ``faults.injector.<field>`` in an
        :class:`repro.obs.metrics.MetricsRegistry`."""
        from repro.obs.metrics import register_dataclass_counters

        register_dataclass_counters(registry, self.METRICS_PREFIX, self, **labels)


class FaultInjector:
    """Schedules and executes the fault events of one run."""

    def __init__(self, network: "CollectionNetwork", schedule: FaultSchedule) -> None:
        self._network = network
        self.schedule = schedule
        self.stats = FaultStats()
        #: Nodes currently down (crash seen, reboot not yet).
        self.crashed: Set[int] = set()
        #: Nodes we detached from an incremental medium (fast backend):
        #: re-attached on reboot.  The exact backend keeps crashed nodes
        #: attached (detaching would force an O(N·k) rebuild per fault and
        #: perturb its bit-identical stream), relying on the MAC shutdown
        #: for dead-node silence.
        self._detached: Set[int] = set()
        #: Observers called as ``(kind, time_s, fields)`` after each fault
        #: lands (tracing, the invariant checker).
        self.on_event: List[FaultObserver] = []
        self._stop_at = network.config.duration_s - network.config.drain_s
        self._armed = False
        self._validate()
        self._faults = network.medium.enable_faults()
        self.burst_interferers: List[WindowedInterferer] = []
        self._build_burst_interferers()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _validate(self) -> None:
        network = self._network
        roots = set(network.roots)
        for event in self.schedule.events:
            if isinstance(event, (NodeCrash, NodeReboot)):
                if event.node not in network.nodes:
                    raise ValueError(f"fault targets unknown node {event.node}")
                if event.node in roots:
                    raise ValueError(f"cannot crash root node {event.node}")
                protocol = network.nodes[event.node].protocol
                if not hasattr(protocol, "fault_shutdown"):
                    raise ValueError(
                        f"protocol {type(protocol).__name__} does not support "
                        f"crash/reboot faults (no fault_shutdown); use "
                        f"medium-level faults (blackout/shift/burst) instead"
                    )
            elif isinstance(event, (LinkBlackout, QualityShift)):
                for nid in (event.node_a, event.node_b):
                    if nid is not None and nid not in network.nodes:
                        raise ValueError(f"fault targets unknown node {nid}")

    def _build_burst_interferers(self) -> None:
        """One windowed interferer per burst event, attached before the
        medium is finalized so it gets candidate receiver rows."""
        network = self._network
        index = 0
        for event in self.schedule.events:
            if not isinstance(event, InterferenceBurst):
                continue
            nid = FAULT_INTERFERER_ID_BASE + index
            network.channel.add_position(nid, (event.x, event.y))
            self.burst_interferers.append(
                WindowedInterferer(
                    network.engine,
                    network.medium,
                    nid,
                    event.power_dbm,
                    network.rng.stream("faults", "interferer", index),
                    windows=[(event.start_s, event.end_s)],
                )
            )
            index += 1

    def arm(self) -> None:
        """Schedule every fault event into the engine (idempotent)."""
        if self._armed:
            return
        self._armed = True
        engine = self._network.engine
        for event in self.schedule.events:
            if isinstance(event, NodeCrash):
                engine.schedule_at(event.at_s, self._crash, event.node)
                if event.reboot_at_s is not None:
                    engine.schedule_at(event.reboot_at_s, self._reboot, event.node)
            elif isinstance(event, NodeReboot):
                engine.schedule_at(event.at_s, self._reboot, event.node)
            elif isinstance(event, LinkBlackout):
                engine.schedule_at(event.start_s, self._blackout_start, event)
                engine.schedule_at(event.end_s, self._blackout_end, event)
            elif isinstance(event, QualityShift):
                engine.schedule_at(event.at_s, self._quality_shift, event)
            elif isinstance(event, InterferenceBurst):
                engine.schedule_at(event.start_s, self._burst_start, event)
        for interferer in self.burst_interferers:
            interferer.start()

    # ------------------------------------------------------------------
    # Event handlers
    # ------------------------------------------------------------------
    def _wipe(self, node_id: int) -> None:
        """Shared crash/reboot RAM wipe (a reboot is a zero-downtime crash)."""
        node = self._network.nodes[node_id]
        node.mac.shutdown()
        node.protocol.fault_shutdown()
        if node.estimator is not None:
            node.estimator.reset_state()
        if node.source is not None:
            node.source.stop()

    def _crash(self, node_id: int) -> None:
        node = self._network.nodes[node_id]
        node.crashed = True
        self.crashed.add(node_id)
        self._wipe(node_id)
        medium = self._network.medium
        if medium.supports_incremental and node_id not in self._detached:
            # Incremental backend (fast): route the crash through an O(k)
            # medium detach so the dead node stops being a candidate /
            # interference target without any rebuild (DESIGN.md §11).
            medium.detach(node_id)
            self._detached.add(node_id)
        self.stats.node_crashes += 1
        self._emit("crash", node=node_id)

    def _reboot(self, node_id: int) -> None:
        node = self._network.nodes[node_id]
        self._wipe(node_id)
        node.crashed = False
        self.crashed.discard(node_id)
        if node_id in self._detached:
            self._detached.discard(node_id)
            self._network.medium.attach(node.mac)
        node.mac.restart()
        node.protocol.fault_restart()
        # Restart traffic unless the drain window has begun (the global
        # stop event at ``duration - drain`` has already fired or will
        # still fire and stop this new epoch correctly either way).
        if node.source is not None and self._network.engine.now < self._stop_at:
            node.source.start()
        self.stats.node_reboots += 1
        self._emit("reboot", node=node_id)

    def _blackout_start(self, event: LinkBlackout) -> None:
        self._faults.blackout_start(event.node_a, event.node_b)
        self.stats.blackouts_started += 1
        self._emit("blackout", a=event.node_a, b=event.node_b)

    def _blackout_end(self, event: LinkBlackout) -> None:
        self._faults.blackout_end(event.node_a, event.node_b)
        self.stats.blackouts_ended += 1
        self._emit("blackout-end", a=event.node_a, b=event.node_b)

    def _quality_shift(self, event: QualityShift) -> None:
        self._faults.shift(event.delta_db, event.node_a, event.node_b)
        self.stats.quality_shifts += 1
        self._emit("quality-shift", delta=event.delta_db, a=event.node_a, b=event.node_b)

    def _burst_start(self, event: InterferenceBurst) -> None:
        # The WindowedInterferer drives the actual traffic; this event is
        # the bookkeeping/observability marker at the window edge.
        self.stats.bursts_started += 1
        self._emit("interference", x=event.x, y=event.y, power=event.power_dbm)

    def _emit(self, kind: str, **fields: Any) -> None:
        now = self._network.engine.now
        for observer in self.on_event:
            observer(kind, now, fields)

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def register_metrics(self, registry: "MetricsRegistry") -> None:
        """Sync medium-side counters and register ``faults.injector.*``."""
        self.stats.blackout_drops = self._faults.blackout_drops
        self.stats.register_into(registry)
