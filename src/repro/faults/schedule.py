"""Typed fault events and the :class:`FaultSchedule` scenario spec.

Every event is a frozen dataclass, so a whole schedule is hashable,
picklable (it travels to runner worker processes inside ``RunSpec``
overrides) and canonically digestible through
:func:`repro.runner.hashing.config_digest` — two runs share a cache entry
only if their fault scenarios are value-identical.

Times are absolute simulated seconds.  Node fields use ``None`` as a
wildcard where documented (e.g. a :class:`LinkBlackout` with both endpoints
``None`` silences the whole network).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, fields
from pathlib import Path
from typing import Any, ClassVar, Dict, List, Optional, Tuple, Type, Union


@dataclass(frozen=True)
class NodeCrash:
    """Node failure: RAM state (estimator table, routing, queues) is lost.

    With ``reboot_at_s`` set the node comes back at that time with wiped
    state and re-bootstraps (the paper's reboot scenario); ``None`` models
    permanent death / leave churn.
    """

    KIND: ClassVar[str] = "node_crash"

    at_s: float
    node: int
    reboot_at_s: Optional[float] = None

    def validate(self) -> None:
        _require(self.at_s >= 0.0, f"crash time must be >= 0: {self.at_s}")
        _require(self.node >= 0, f"bad node id: {self.node}")
        if self.reboot_at_s is not None:
            _require(
                self.reboot_at_s > self.at_s,
                f"reboot at {self.reboot_at_s} not after crash at {self.at_s}",
            )


@dataclass(frozen=True)
class NodeReboot:
    """Standalone reboot (join churn: pair with a ``NodeCrash`` at t=0)."""

    KIND: ClassVar[str] = "node_reboot"

    at_s: float
    node: int

    def validate(self) -> None:
        _require(self.at_s >= 0.0, f"reboot time must be >= 0: {self.at_s}")
        _require(self.node >= 0, f"bad node id: {self.node}")


@dataclass(frozen=True)
class LinkBlackout:
    """Window during which frames on the matched links never decode.

    ``node_a``/``node_b`` select the scope: both set = that one link (either
    direction); one set = every link touching that node; both ``None`` =
    every link in the network.  Transmissions still occupy the channel
    (CCA and interference are physical; only decoding is suppressed).
    """

    KIND: ClassVar[str] = "link_blackout"

    start_s: float
    end_s: float
    node_a: Optional[int] = None
    node_b: Optional[int] = None

    def validate(self) -> None:
        _require(self.start_s >= 0.0, f"blackout start must be >= 0: {self.start_s}")
        _require(
            self.end_s > self.start_s,
            f"blackout window empty: ({self.start_s}, {self.end_s})",
        )
        for node in (self.node_a, self.node_b):
            _require(node is None or node >= 0, f"bad node id: {node}")


@dataclass(frozen=True)
class QualityShift:
    """Stepwise, persistent gain change (dB) on the matched links.

    Shifts are cumulative: two −3 dB shifts on the same scope leave the
    links 6 dB down.  Scope selection matches :class:`LinkBlackout`.
    """

    KIND: ClassVar[str] = "quality_shift"

    at_s: float
    delta_db: float
    node_a: Optional[int] = None
    node_b: Optional[int] = None

    def validate(self) -> None:
        _require(self.at_s >= 0.0, f"shift time must be >= 0: {self.at_s}")
        for node in (self.node_a, self.node_b):
            _require(node is None or node >= 0, f"bad node id: {node}")


@dataclass(frozen=True)
class InterferenceBurst:
    """External jammer at ``(x, y)`` active during ``(start_s, end_s)``.

    Realized as a :class:`~repro.phy.noise.WindowedInterferer`: bursty
    802.11-style traffic that raises the interference floor at nearby
    receivers, corrupting overlapping packets via SINR (the Figure 3
    failure mode, now schedulable).
    """

    KIND: ClassVar[str] = "interference_burst"

    start_s: float
    end_s: float
    x: float
    y: float
    power_dbm: float = 0.0

    def validate(self) -> None:
        _require(self.start_s >= 0.0, f"burst start must be >= 0: {self.start_s}")
        _require(
            self.end_s > self.start_s,
            f"burst window empty: ({self.start_s}, {self.end_s})",
        )


FaultEvent = Union[NodeCrash, NodeReboot, LinkBlackout, QualityShift, InterferenceBurst]

#: JSON ``kind`` tag → event class (the round-trip registry).
EVENT_TYPES: Dict[str, Type[Any]] = {
    cls.KIND: cls
    for cls in (NodeCrash, NodeReboot, LinkBlackout, QualityShift, InterferenceBurst)
}


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ValueError(message)


@dataclass(frozen=True)
class FaultSchedule:
    """An ordered bundle of fault events for one run.

    Same-time events apply in schedule order (the injector schedules them
    in sequence and the engine is FIFO at equal times), so the tuple order
    is part of the scenario's identity — and of its digest.
    """

    events: Tuple[FaultEvent, ...] = ()
    #: Human-readable scenario name (presets set it; free-form otherwise).
    name: str = ""

    def __post_init__(self) -> None:
        object.__setattr__(self, "events", tuple(self.events))
        for event in self.events:
            if type(event) not in EVENT_TYPES.values():
                raise TypeError(f"not a fault event: {event!r}")
            event.validate()

    def __len__(self) -> int:
        return len(self.events)

    # ------------------------------------------------------------------
    # Hashing / JSON round trip
    # ------------------------------------------------------------------
    def digest(self) -> str:
        """Canonical 128-bit hex digest of the scenario (cache-key stable)."""
        from repro.runner.hashing import config_digest

        return config_digest(self)

    def to_json_dict(self) -> Dict[str, Any]:
        events: List[Dict[str, Any]] = []
        for event in self.events:
            row: Dict[str, Any] = {"kind": event.KIND}
            for f in fields(event):
                row[f.name] = getattr(event, f.name)
            events.append(row)
        return {"name": self.name, "events": events}

    @classmethod
    def from_json_dict(cls, data: Dict[str, Any]) -> "FaultSchedule":
        events = []
        for row in data.get("events", ()):
            row = dict(row)
            kind = row.pop("kind", None)
            event_cls = EVENT_TYPES.get(kind)
            if event_cls is None:
                raise ValueError(
                    f"unknown fault event kind {kind!r}; choose from {sorted(EVENT_TYPES)}"
                )
            events.append(event_cls(**row))
        return cls(events=tuple(events), name=str(data.get("name", "")))

    def to_json_file(self, path: Union[str, Path]) -> None:
        Path(path).write_text(json.dumps(self.to_json_dict(), indent=2) + "\n")

    @classmethod
    def from_json_file(cls, path: Union[str, Path]) -> "FaultSchedule":
        return cls.from_json_dict(json.loads(Path(path).read_text()))
