"""Topologies: generators and synthetic testbed profiles."""

from repro.topology.generators import Topology, grid, line, pair, random_uniform
from repro.topology.testbeds import (
    MIRAGE,
    PROFILES,
    TUTORNET,
    InterfererSpec,
    TestbedProfile,
    scaled_profile,
)

__all__ = [
    "MIRAGE",
    "PROFILES",
    "TUTORNET",
    "InterfererSpec",
    "TestbedProfile",
    "Topology",
    "grid",
    "line",
    "pair",
    "random_uniform",
    "scaled_profile",
]
