"""Topology generation: node placements for simulated networks."""

from __future__ import annotations

import math
from random import Random
from dataclasses import dataclass

from typing import Dict, List, Optional, Tuple

Position = Tuple[float, float]


@dataclass
class Topology:
    """A static node placement with a designated sink."""

    name: str
    positions: Dict[int, Position]
    sink: int = 0

    def __post_init__(self) -> None:
        if self.sink not in self.positions:
            raise ValueError(f"sink {self.sink} has no position")

    @property
    def size(self) -> int:
        return len(self.positions)

    def node_ids(self) -> List[int]:
        return sorted(self.positions)

    def distance(self, a: int, b: int) -> float:
        (ax, ay), (bx, by) = self.positions[a], self.positions[b]
        return math.hypot(ax - bx, ay - by)

    def bounding_box(self) -> Tuple[float, float, float, float]:
        xs = [p[0] for p in self.positions.values()]
        ys = [p[1] for p in self.positions.values()]
        return min(xs), min(ys), max(xs), max(ys)


def grid(
    nx: int,
    ny: int,
    spacing_m: float,
    rng: Optional[Random] = None,
    jitter_m: float = 0.0,
    name: str = "grid",
    sink: str = "corner",
) -> Topology:
    """``nx × ny`` grid with optional placement jitter.

    ``sink`` is ``"corner"`` (node 0, bottom-left — the paper's Figure 2
    layout) or ``"center"``.
    """
    if nx <= 0 or ny <= 0:
        raise ValueError("grid dimensions must be positive")
    positions: Dict[int, Position] = {}
    nid = 0
    for j in range(ny):
        for i in range(nx):
            x, y = i * spacing_m, j * spacing_m
            if jitter_m > 0.0:
                if rng is None:
                    raise ValueError("jitter requires an rng")
                x += rng.uniform(-jitter_m, jitter_m)
                y += rng.uniform(-jitter_m, jitter_m)
            positions[nid] = (x, y)
            nid += 1
    sink_id = 0 if sink == "corner" else (ny // 2) * nx + nx // 2
    return Topology(name=name, positions=positions, sink=sink_id)


def random_uniform(
    n: int,
    width_m: float,
    height_m: float,
    rng: Random,
    name: str = "uniform",
    sink: str = "corner",
    min_separation_m: float = 0.5,
    max_attempts: int = 10_000,
) -> Topology:
    """``n`` nodes uniform in a ``width × height`` box, minimum separation.

    The sink is moved to the requested anchor (corner or center) afterwards.
    """
    if n <= 1:
        raise ValueError("need at least 2 nodes")
    positions: Dict[int, Position] = {}
    attempts = 0
    while len(positions) < n:
        attempts += 1
        if attempts > max_attempts:
            raise RuntimeError("could not satisfy min_separation; lower it or grow the box")
        candidate = (rng.uniform(0, width_m), rng.uniform(0, height_m))
        ok = all(
            math.hypot(candidate[0] - p[0], candidate[1] - p[1]) >= min_separation_m
            for p in positions.values()
        )
        if ok:
            positions[len(positions)] = candidate
    if sink == "corner":
        positions[0] = (0.0, 0.0)
    elif sink == "center":
        positions[0] = (width_m / 2.0, height_m / 2.0)
    else:
        raise ValueError(f"unknown sink anchor: {sink}")
    return Topology(name=name, positions=positions, sink=0)


def line(n: int, spacing_m: float, name: str = "line") -> Topology:
    """A 1-D chain — the classic multihop stress topology."""
    if n <= 1:
        raise ValueError("need at least 2 nodes")
    return Topology(name=name, positions={i: (i * spacing_m, 0.0) for i in range(n)}, sink=0)


def pair(distance_m: float, name: str = "pair") -> Topology:
    """Two nodes — the minimal link-estimation scenario."""
    return Topology(name=name, positions={0: (0.0, 0.0), 1: (distance_m, 0.0)}, sink=0)
