"""Topology generation: node placements for simulated networks."""

from __future__ import annotations

import math
from random import Random
from dataclasses import dataclass

from typing import Dict, List, Optional, Tuple

Position = Tuple[float, float]


@dataclass
class Topology:
    """A static node placement with a designated sink."""

    name: str
    positions: Dict[int, Position]
    sink: int = 0

    def __post_init__(self) -> None:
        if self.sink not in self.positions:
            raise ValueError(f"sink {self.sink} has no position")

    @property
    def size(self) -> int:
        return len(self.positions)

    def node_ids(self) -> List[int]:
        return sorted(self.positions)

    def distance(self, a: int, b: int) -> float:
        (ax, ay), (bx, by) = self.positions[a], self.positions[b]
        return math.hypot(ax - bx, ay - by)

    def bounding_box(self) -> Tuple[float, float, float, float]:
        xs = [p[0] for p in self.positions.values()]
        ys = [p[1] for p in self.positions.values()]
        return min(xs), min(ys), max(xs), max(ys)


def grid(
    nx: int,
    ny: int,
    spacing_m: float,
    rng: Optional[Random] = None,
    jitter_m: float = 0.0,
    name: str = "grid",
    sink: str = "corner",
) -> Topology:
    """``nx × ny`` grid with optional placement jitter.

    ``sink`` is ``"corner"`` (node 0, bottom-left — the paper's Figure 2
    layout) or ``"center"``.
    """
    if nx <= 0 or ny <= 0:
        raise ValueError("grid dimensions must be positive")
    positions: Dict[int, Position] = {}
    nid = 0
    for j in range(ny):
        for i in range(nx):
            x, y = i * spacing_m, j * spacing_m
            if jitter_m > 0.0:
                if rng is None:
                    raise ValueError("jitter requires an rng")
                x += rng.uniform(-jitter_m, jitter_m)
                y += rng.uniform(-jitter_m, jitter_m)
            positions[nid] = (x, y)
            nid += 1
    sink_id = 0 if sink == "corner" else (ny // 2) * nx + nx // 2
    return Topology(name=name, positions=positions, sink=sink_id)


def random_uniform(
    n: int,
    width_m: float,
    height_m: float,
    rng: Random,
    name: str = "uniform",
    sink: str = "corner",
    min_separation_m: float = 0.5,
    max_attempts: int = 10_000,
) -> Topology:
    """``n`` nodes uniform in a ``width × height`` box, minimum separation.

    The sink is moved to the requested anchor (corner or center) afterwards.
    """
    if n <= 1:
        raise ValueError("need at least 2 nodes")
    positions: Dict[int, Position] = {}
    attempts = 0
    while len(positions) < n:
        attempts += 1
        if attempts > max_attempts:
            raise RuntimeError("could not satisfy min_separation; lower it or grow the box")
        candidate = (rng.uniform(0, width_m), rng.uniform(0, height_m))
        ok = all(
            math.hypot(candidate[0] - p[0], candidate[1] - p[1]) >= min_separation_m
            for p in positions.values()
        )
        if ok:
            positions[len(positions)] = candidate
    if sink == "corner":
        positions[0] = (0.0, 0.0)
    elif sink == "center":
        positions[0] = (width_m / 2.0, height_m / 2.0)
    else:
        raise ValueError(f"unknown sink anchor: {sink}")
    return Topology(name=name, positions=positions, sink=0)


def city_grid(
    n: int,
    blocks: int,
    block_m: float = 200.0,
    rng: Optional[Random] = None,
    street_jitter_m: float = 3.0,
    name: str = "city_grid",
) -> Topology:
    """``n`` nodes along the streets of a ``blocks × blocks`` city grid.

    The deployment models street-level metering/sensing at city scale
    (the ROADMAP's 1k–10k node target): nodes sit on the street segments
    of a Manhattan grid — uniformly spread over all horizontal and
    vertical streets in deterministic round-robin order, with a small
    lateral jitter (curb-to-curb placement) when ``rng`` is given.  The
    sink is the intersection nearest the center.  Scales to 10k nodes in
    O(n) construction.
    """
    if n <= 1:
        raise ValueError("need at least 2 nodes")
    if blocks <= 0:
        raise ValueError("blocks must be positive")
    side_m = blocks * block_m
    # Streets: (blocks+1) horizontal + (blocks+1) vertical lines.
    streets: List[Tuple[bool, float]] = []
    for i in range(blocks + 1):
        streets.append((True, i * block_m))  # horizontal at y = i·block
        streets.append((False, i * block_m))  # vertical at x = i·block
    positions: Dict[int, Position] = {}
    n_streets = len(streets)
    per_street = n / n_streets
    nid = 0
    for s, (horizontal, offset) in enumerate(streets):
        # Round-robin the remainder so every count n is covered exactly.
        count = int(per_street * (s + 1)) - int(per_street * s)
        for k in range(count):
            along = side_m * (k + 0.5) / max(count, 1)
            lateral = offset
            if rng is not None and street_jitter_m > 0.0:
                lateral += rng.uniform(-street_jitter_m, street_jitter_m)
            positions[nid] = (along, lateral) if horizontal else (lateral, along)
            nid += 1
    # Sink: the node nearest the central intersection (deterministic
    # tie-break by id via min() scanning ascending ids).
    center = (side_m / 2.0, side_m / 2.0)
    sink_id = min(
        positions,
        key=lambda i: (
            math.hypot(positions[i][0] - center[0], positions[i][1] - center[1]),
            i,
        ),
    )
    return Topology(name=name, positions=positions, sink=sink_id)


def clustered(
    n: int,
    k_clusters: int,
    rng: Random,
    spread_m: float = 40.0,
    area_m: float = 1000.0,
    name: str = "clustered",
) -> Topology:
    """``n`` nodes in ``k_clusters`` Gaussian clusters over a square area.

    Models campus/neighborhood deployments: dense pockets with sparse
    inter-cluster links.  Cluster centers are uniform in the area; nodes
    are assigned round-robin and scattered with a Gaussian of sigma
    ``spread_m``, clamped to the area.  The sink is the node nearest the
    area's center.
    """
    if n <= 1:
        raise ValueError("need at least 2 nodes")
    if k_clusters <= 0:
        raise ValueError("k_clusters must be positive")
    centers = [
        (rng.uniform(0.0, area_m), rng.uniform(0.0, area_m))
        for _ in range(k_clusters)
    ]
    positions: Dict[int, Position] = {}
    for nid in range(n):
        cx, cy = centers[nid % k_clusters]
        x = min(max(cx + rng.gauss(0.0, spread_m), 0.0), area_m)
        y = min(max(cy + rng.gauss(0.0, spread_m), 0.0), area_m)
        positions[nid] = (x, y)
    center = (area_m / 2.0, area_m / 2.0)
    sink_id = min(
        positions,
        key=lambda i: (
            math.hypot(positions[i][0] - center[0], positions[i][1] - center[1]),
            i,
        ),
    )
    return Topology(name=name, positions=positions, sink=sink_id)


def line(n: int, spacing_m: float, name: str = "line") -> Topology:
    """A 1-D chain — the classic multihop stress topology."""
    if n <= 1:
        raise ValueError("need at least 2 nodes")
    return Topology(name=name, positions={i: (i * spacing_m, 0.0) for i in range(n)}, sink=0)


def pair(distance_m: float, name: str = "pair") -> Topology:
    """Two nodes — the minimal link-estimation scenario."""
    return Topology(name=name, positions={0: (0.0, 0.0), 1: (distance_m, 0.0)}, sink=0)
