"""Synthetic stand-ins for the paper's two testbeds.

The real Mirage (85 MicaZ, Intel Research Berkeley machine room) and
Tutornet (94 TelosB, USC, a noisier office environment) node maps are not
published, so we synthesize layouts and channel profiles calibrated to
reproduce the paper's observable properties:

* **Mirage-85**: dense indoor room; at 0 dBm most nodes reach the corner
  sink within 1–3 hops (Figure 2 shows tree depths of 1–5 with a 10-entry
  table); moderate shadowing; light ambient interference.
* **Tutornet-94**: larger and noisier (the paper's MultiHopLQI delivery
  drops to 85% there vs 93% on Mirage); heavier shadowing and several
  802.11-style burst interferers.

The substitution preserves what the experiments actually exercise — link
quality distributions with intermediate/asymmetric/bursty links and a
realistic degree distribution — rather than exact geometry.
"""

from __future__ import annotations

from random import Random
from dataclasses import dataclass

from typing import Optional, Tuple


from repro.phy.channel import PathLossModel
from repro.topology.generators import Topology, random_uniform

Position = Tuple[float, float]


@dataclass(frozen=True)
class InterfererSpec:
    """Placement + traffic statistics of one external interferer."""

    position: Position
    power_dbm: float = -5.0
    off_mean_s: float = 120.0
    on_mean_s: float = 20.0


@dataclass(frozen=True)
class TestbedProfile:
    """Everything needed to instantiate a testbed-like simulation."""

    name: str
    n_nodes: int
    width_m: float
    height_m: float
    pathloss: PathLossModel
    shadowing_sigma_db: float
    temporal_sigma_db: float
    temporal_tau_s: float
    tx_power_sigma_db: float
    noise_floor_sigma_db: float
    #: Fraction of node pairs whose link is bimodal (alternating nominal /
    #: deep-fade, after Srinivasan et al. [19]).
    bimodal_fraction: float = 0.0
    fade_depth_db: float = 15.0
    fade_dwell_s: float = 80.0
    good_dwell_s: float = 240.0
    interferers: Tuple[InterfererSpec, ...] = ()

    def topology(self, seed: int) -> Topology:
        # Topology synthesis predates RngManager and its seed is an explicit
        # caller-facing parameter, not a derived stream; rekeying it through
        # derive_seed would shuffle every committed golden placement.
        rng = Random(seed)  # lint: disable=rng-provenance
        return random_uniform(
            self.n_nodes,
            self.width_m,
            self.height_m,
            rng,
            name=self.name,
            sink="corner",
            min_separation_m=1.0,
        )


#: Mirage-like: 85 nodes, dense machine room, corner sink.  Heavy static
#: shadowing spreads links across the whole PRR transition region (the
#: "prevalence of intermediate-quality links" the paper opens with), and
#: slow temporal fading walks marginal links in and out of usability.
MIRAGE = TestbedProfile(
    name="mirage-85",
    n_nodes=85,
    width_m=34.0,
    height_m=14.0,
    pathloss=PathLossModel(pl_d0_db=55.0, exponent=3.0),
    shadowing_sigma_db=5.0,
    temporal_sigma_db=2.5,
    temporal_tau_s=45.0,
    tx_power_sigma_db=1.5,
    noise_floor_sigma_db=2.0,
    bimodal_fraction=0.20,
    fade_depth_db=15.0,
    fade_dwell_s=80.0,
    good_dwell_s=240.0,
    interferers=(
        InterfererSpec(position=(20.0, 7.0), power_dbm=-6.0, off_mean_s=90.0, on_mean_s=20.0),
        InterfererSpec(position=(8.0, 12.0), power_dbm=-8.0, off_mean_s=150.0, on_mean_s=15.0),
    ),
)

#: Tutornet-like: 94 nodes, larger/noisier office floor (the paper's
#: MultiHopLQI delivery drops to 85% there, vs 93% on Mirage).
TUTORNET = TestbedProfile(
    name="tutornet-94",
    n_nodes=94,
    width_m=42.0,
    height_m=16.0,
    pathloss=PathLossModel(pl_d0_db=55.0, exponent=3.1),
    shadowing_sigma_db=5.5,
    temporal_sigma_db=3.0,
    temporal_tau_s=40.0,
    tx_power_sigma_db=1.8,
    noise_floor_sigma_db=2.2,
    bimodal_fraction=0.30,
    fade_depth_db=16.0,
    fade_dwell_s=100.0,
    good_dwell_s=200.0,
    interferers=(
        InterfererSpec(position=(12.0, 8.0), power_dbm=-4.0, off_mean_s=70.0, on_mean_s=30.0),
        InterfererSpec(position=(30.0, 4.0), power_dbm=-5.0, off_mean_s=90.0, on_mean_s=25.0),
        InterfererSpec(position=(38.0, 14.0), power_dbm=-6.0, off_mean_s=80.0, on_mean_s=20.0),
        InterfererSpec(position=(20.0, 15.0), power_dbm=-7.0, off_mean_s=110.0, on_mean_s=18.0),
    ),
)

PROFILES = {"mirage": MIRAGE, "tutornet": TUTORNET}


def scaled_profile(base: TestbedProfile, n_nodes: int, name: Optional[str] = None) -> TestbedProfile:
    """A smaller copy of a testbed profile (area shrunk to keep density).

    Used by the benchmark suite, which runs the same experiments as the
    examples at reduced scale.
    """
    import dataclasses
    import math

    scale = math.sqrt(n_nodes / base.n_nodes)
    return dataclasses.replace(
        base,
        name=name or f"{base.name}-scaled-{n_nodes}",
        n_nodes=n_nodes,
        width_m=base.width_m * scale,
        height_m=base.height_m * scale,
        interferers=tuple(
            dataclasses.replace(spec, position=(spec.position[0] * scale, spec.position[1] * scale))
            for spec in base.interferers
        ),
    )
