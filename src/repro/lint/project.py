"""Whole-program analysis pass: per-file fact extraction + project index.

The per-file rules in :mod:`repro.lint.rules` judge one module at a time.
The contracts this module serves cannot be seen that way: RNG-stream
provenance (R001) needs every ``derive_seed``/``stream`` call site in the
tree, cache-schema drift (C001) needs the field schemas of every dataclass
reachable from ``SimConfig``, backend parity (P001) needs the method and
collaborator-read surfaces of two classes in two files, and worker-state
safety (W001) needs the import graph plus every mutation site of every
module-level container.

The pass runs in three stages:

1. **Extraction** — each parsed module is lowered into a :class:`FileFacts`
   record: imports, top-level assignments, dataclass field schemas, class
   method/surface tables, module-level mutable containers, mutation sites,
   and RNG call sites.  Facts are plain JSON-able data.
2. **Indexing** — :meth:`ProjectIndex.build` aggregates the facts: a module
   table, a resolved import graph, and a cross-module resolution of every
   mutation site to the ``(module, name)`` global it targets.
3. **Rules** — :class:`ProjectRule` subclasses (registered alongside the
   file rules) implement ``check_project(index)`` and yield ordinary
   :class:`~repro.lint.core.Finding` objects, so ``--select`` / ``--ignore``
   / inline suppressions / the baseline all apply unchanged.

Because extraction is per-file and pure, facts are cached keyed on a
content digest (:class:`IndexCache`): a CI re-run over an unchanged tree
deserializes every record instead of re-walking the ASTs.
"""

from __future__ import annotations

import ast
import hashlib
import json
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.lint.core import Finding, ModuleInfo, Rule, imported_names

#: Bump when the extraction below changes shape: cached facts from older
#: extractors are discarded wholesale.
FACTS_VERSION = 1

#: Container constructors whose module-level instances are mutable state.
MUTABLE_CONSTRUCTORS = {
    "list", "dict", "set", "defaultdict", "OrderedDict", "Counter", "deque",
}

#: Methods that mutate their receiver in place.
MUTATOR_METHODS = {
    "append", "extend", "insert", "add", "update", "setdefault", "pop",
    "popitem", "remove", "discard", "clear", "appendleft", "extendleft",
}

#: ``numpy.random`` bit-generator constructors (explicit seeding required).
BITGEN_NAMES = {"PCG64", "PCG64DXSM", "Philox", "SFC64", "MT19937"}

#: Cap stored source snippets so facts (and the cache) stay small.
_SNIPPET_LEN = 120
_ASSIGN_LEN = 400


def source_digest(module: ModuleInfo) -> str:
    """Content digest keying the facts cache (pure function of the source)."""
    h = hashlib.blake2b(digest_size=16)
    h.update("\n".join(module.source_lines).encode("utf-8"))
    return h.hexdigest()


def _dotted(node: ast.expr) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain (self included), else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _unparse(node: ast.AST, limit: int = _SNIPPET_LEN) -> str:
    try:
        text = ast.unparse(node)
    except Exception:  # pragma: no cover - unparse is total on parsed trees
        text = "<unprintable>"
    return text[:limit]


def _is_string_built(node: ast.expr) -> bool:
    """Definitely-dynamic string construction (f-string, +, %, .format)."""
    if isinstance(node, ast.JoinedStr):
        return True
    if isinstance(node, ast.BinOp) and isinstance(node.op, (ast.Add, ast.Mod)):
        return isinstance(node.left, (ast.Constant, ast.JoinedStr, ast.BinOp)) and (
            _looks_stringy(node.left) or _looks_stringy(node.right)
        )
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
        return node.func.attr == "format"
    return False


def _looks_stringy(node: ast.expr) -> bool:
    if isinstance(node, ast.Constant):
        return isinstance(node.value, str)
    return isinstance(node, ast.JoinedStr)


def _component(node: ast.expr) -> List[object]:
    """Classify one stream-name component: [kind, value-or-snippet].

    ``lit`` — a string/int literal (the reproducible, greppable case);
    ``str-built`` — an f-string / concatenation / ``.format()`` (flagged by
    R001: pass structured parts instead); ``dyn`` — anything else (a
    variable such as a node id; allowed past the first position).
    """
    if isinstance(node, ast.Constant) and isinstance(node.value, (str, int)) \
            and not isinstance(node.value, bool):
        return ["lit", node.value]
    if isinstance(node, ast.Starred):
        return ["dyn", "*" + _unparse(node.value, 60)]
    if _is_string_built(node):
        return ["str-built", _unparse(node, 60)]
    return ["dyn", _unparse(node, 60)]


@dataclass
class FileFacts:
    """Everything the project rules need from one module, JSON-able."""

    path: str
    module: str
    #: ``[bound_name, target, lineno]`` for every import binding.
    imports: List[List[object]] = field(default_factory=list)
    #: Top-level ``Name = <expr>`` assignments (value unparsed, truncated) —
    #: used to expand type aliases like ``FaultEvent = Union[...]``.
    assignments: Dict[str, str] = field(default_factory=dict)
    #: Top-level integer constants (``CACHE_SCHEMA_VERSION = 5``).
    int_constants: Dict[str, int] = field(default_factory=dict)
    #: ``{name, line, kind}`` for each module-level mutable container.
    mutable_globals: List[Dict[str, object]] = field(default_factory=list)
    #: ``{recv: [parts...], op, line, func}`` — ``func`` is the enclosing
    #: function qualname ("" at module level: import-time initialization).
    mutations: List[Dict[str, object]] = field(default_factory=list)
    #: ``name -> {line, fields: [{name, type, default}]}`` per @dataclass.
    dataclasses: Dict[str, Dict[str, object]] = field(default_factory=dict)
    #: ``name -> {line, bases, methods: {name: line}, surfaces: {m: [..]}}``.
    classes: Dict[str, Dict[str, object]] = field(default_factory=dict)
    #: RNG call sites; see :func:`_extract_rng_sites` for the schema.
    rng_sites: List[Dict[str, object]] = field(default_factory=list)

    def to_json(self) -> Dict[str, object]:
        return asdict(self)

    @classmethod
    def from_json(cls, data: Dict[str, object]) -> "FileFacts":
        return cls(**data)  # type: ignore[arg-type]


# ----------------------------------------------------------------------
# Extraction
# ----------------------------------------------------------------------
def _dataclass_decorated(node: ast.ClassDef) -> bool:
    for deco in node.decorator_list:
        target = deco.func if isinstance(deco, ast.Call) else deco
        name = _dotted(target)
        if name in ("dataclass", "dataclasses.dataclass"):
            return True
    return False


def _dataclass_schema(node: ast.ClassDef) -> Dict[str, object]:
    fields: List[Dict[str, object]] = []
    for stmt in node.body:
        if not isinstance(stmt, ast.AnnAssign) or not isinstance(stmt.target, ast.Name):
            continue
        annotation = _unparse(stmt.annotation, _ASSIGN_LEN)
        if "ClassVar" in annotation:
            continue  # not a dataclass field; excluded from the digest too
        fields.append(
            {
                "name": stmt.target.id,
                "type": annotation,
                "default": None if stmt.value is None else _unparse(stmt.value, _ASSIGN_LEN),
            }
        )
    return {"line": node.lineno, "fields": fields}


#: Attribute-chain roots whose reads form a backend's "config surface".
_SURFACE_ROOTS = ("channel", "config", "cfg", "white_bit_policy", "lqi_model")


def _surface_chains(fn: ast.AST) -> List[str]:
    """Collaborator attribute chains read inside one method body."""
    chains: Set[str] = set()
    for node in ast.walk(fn):
        if not isinstance(node, ast.Attribute):
            continue
        dotted = _dotted(node)
        if dotted is None:
            continue
        parts = dotted.split(".")
        if parts and parts[0] == "self":
            parts = parts[1:]
        if len(parts) < 2:
            continue
        if any(p.startswith("_") for p in parts):
            continue  # private internals are not contract surface
        if parts[0] in _SURFACE_ROOTS:
            chains.add(".".join(parts))
        elif "radio" in parts[:-1]:
            # receiver.radio.noise_floor_dbm -> radio.noise_floor_dbm
            chains.add(".".join(parts[parts.index("radio"):]))
    # Keep only maximal chains: self.channel.cfg and self.channel.cfg.x
    # both walk past the same read; the longer one carries the information.
    out = [c for c in chains if not any(o != c and o.startswith(c + ".") for o in chains)]
    return sorted(out)


def _class_facts(node: ast.ClassDef) -> Dict[str, object]:
    methods: Dict[str, int] = {}
    surfaces: Dict[str, List[str]] = {}
    for stmt in node.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            methods[stmt.name] = stmt.lineno
            chains = _surface_chains(stmt)
            if chains:
                surfaces[stmt.name] = chains
    return {
        "line": node.lineno,
        "bases": [_unparse(b, 80) for b in node.bases],
        "methods": methods,
        "surfaces": surfaces,
    }


class _ScopedVisitor(ast.NodeVisitor):
    """One walk collecting scope-sensitive facts: mutations + RNG sites."""

    def __init__(self) -> None:
        self.scope: List[str] = []
        #: Per-function aliases: ``stream = self._rng.stream`` makes later
        #: bare ``stream(...)`` calls count as stream calls (the hot-path
        #: idiom in medium.finalize).
        self.aliases: List[Dict[str, Tuple[str, str]]] = [{}]
        self.mutations: List[Dict[str, object]] = []
        self.rng_sites: List[Dict[str, object]] = []

    # -- scope bookkeeping ------------------------------------------------
    def _qualname(self) -> str:
        return ".".join(self.scope) if self.scope else "<module>"

    def _enter(self, name: str) -> None:
        self.scope.append(name)
        self.aliases.append(dict(self.aliases[-1]))

    def _leave(self) -> None:
        self.scope.pop()
        self.aliases.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._enter(node.name)
        self.generic_visit(node)
        self._leave()

    visit_AsyncFunctionDef = visit_FunctionDef  # type: ignore[assignment]

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._enter(node.name)
        self.generic_visit(node)
        self._leave()

    # -- alias tracking ---------------------------------------------------
    def visit_Assign(self, node: ast.Assign) -> None:
        if (
            len(node.targets) == 1
            and isinstance(node.targets[0], ast.Name)
            and isinstance(node.value, ast.Attribute)
            and node.value.attr in ("stream", "cached_stream", "fork")
        ):
            recv = _dotted(node.value.value) or _unparse(node.value.value, 60)
            self.aliases[-1][node.targets[0].id] = (node.value.attr, recv)
        self._record_subscript_mutation(node.targets)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._record_subscript_mutation([node.target])
        self.generic_visit(node)

    def visit_Delete(self, node: ast.Delete) -> None:
        self._record_subscript_mutation(node.targets)
        self.generic_visit(node)

    def _record_subscript_mutation(self, targets: Sequence[ast.expr]) -> None:
        for target in targets:
            if isinstance(target, ast.Subscript):
                recv = _dotted(target.value)
                if recv is not None:
                    self.mutations.append(
                        {
                            "recv": recv.split("."),
                            "op": "[]=",
                            "line": target.lineno,
                            "func": "" if not self.scope else self._qualname(),
                        }
                    )

    # -- calls: mutator methods + RNG sites -------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute):
            if func.attr in MUTATOR_METHODS:
                recv = _dotted(func.value)
                if recv is not None:
                    self.mutations.append(
                        {
                            "recv": recv.split("."),
                            "op": func.attr,
                            "line": node.lineno,
                            "func": "" if not self.scope else self._qualname(),
                        }
                    )
            if func.attr in ("stream", "cached_stream", "fork"):
                recv = _dotted(func.value) or _unparse(func.value, 60)
                self._rng_site(node, func.attr, recv, node.args)
        qual = _dotted(func)
        if qual is not None:
            self._check_rng_call(node, qual)
        self.generic_visit(node)

    def _rng_site(
        self, node: ast.Call, kind: str, recv: str, components: Sequence[ast.expr]
    ) -> None:
        self.rng_sites.append(
            {
                "kind": kind,
                "line": node.lineno,
                "col": node.col_offset + 1,
                "scope": self._qualname(),
                "recv": recv,
                "components": [_component(c) for c in components],
            }
        )

    def _check_rng_call(self, node: ast.Call, qual: str) -> None:
        tail = qual.rsplit(".", 1)[-1]
        if qual in ("derive_seed",) or qual.endswith(".derive_seed"):
            # derive_seed(master, *key): key components start at arg 1.
            self._rng_site(node, "derive_seed", "", node.args[1:])
        elif qual in ("Random", "random.Random"):
            self._construction_site(node, "random")
        elif tail == "Generator" and qual in (
            "Generator", "numpy.random.Generator", "np.random.Generator",
        ):
            self._generator_site(node)
        elif tail in BITGEN_NAMES and (
            qual == tail or qual.endswith(".%s" % tail)
        ):
            self._construction_site(node, "bitgen")
        elif tail == "default_rng":
            self._construction_site(node, "default_rng")
        elif isinstance(node.func, ast.Name) and node.func.id in self.aliases[-1]:
            kind, recv = self.aliases[-1][node.func.id]
            self._rng_site(node, kind, recv, node.args)

    @staticmethod
    def _provenance(arg: Optional[ast.expr]) -> str:
        """How a seed argument traces back to ``derive_seed``."""
        if arg is None:
            return "none"
        if isinstance(arg, ast.Call):
            qual = _dotted(arg.func)
            if qual is not None and (qual == "derive_seed" or qual.endswith(".derive_seed")):
                return "derive_seed"
        return "other"

    def _construction_site(self, node: ast.Call, kind: str) -> None:
        arg = node.args[0] if node.args else None
        self.rng_sites.append(
            {
                "kind": kind,
                "line": node.lineno,
                "col": node.col_offset + 1,
                "scope": self._qualname(),
                "recv": "",
                "seeded": arg is not None,
                "provenance": self._provenance(arg),
                "snippet": _unparse(node, 80),
            }
        )

    def _generator_site(self, node: ast.Call) -> None:
        arg = node.args[0] if node.args else None
        inline_bitgen = (
            isinstance(arg, ast.Call)
            and (_dotted(arg.func) or "").rsplit(".", 1)[-1] in BITGEN_NAMES
        )
        self.rng_sites.append(
            {
                "kind": "generator",
                "line": node.lineno,
                "col": node.col_offset + 1,
                "scope": self._qualname(),
                "recv": "",
                "seeded": arg is not None,
                # The nested PCG64(...) call is judged at its own bitgen
                # site; the generator site only records whether provenance
                # is traceable at all.
                "provenance": "bitgen" if inline_bitgen else self._provenance(arg),
                "snippet": _unparse(node, 80),
            }
        )


def extract_facts(module: ModuleInfo) -> FileFacts:
    """Lower one parsed module into its :class:`FileFacts` record."""
    facts = FileFacts(path=module.path, module=module.module)
    facts.imports = [[b, t, getattr(n, "lineno", 1)] for b, t, n in imported_names(module.tree)]

    for stmt in module.tree.body:
        value: Optional[ast.expr]
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1 \
                and isinstance(stmt.targets[0], ast.Name):
            name, value = stmt.targets[0].id, stmt.value
        elif isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name) \
                and stmt.value is not None:
            name, value = stmt.target.id, stmt.value
        else:
            continue
        facts.assignments[name] = _unparse(value, _ASSIGN_LEN)
        if isinstance(value, ast.Constant) and isinstance(value.value, int) \
                and not isinstance(value.value, bool):
            facts.int_constants[name] = value.value
        kind = _mutable_kind(value)
        if kind is not None:
            facts.mutable_globals.append({"name": name, "line": stmt.lineno, "kind": kind})

    for stmt in module.tree.body:
        if isinstance(stmt, ast.ClassDef):
            facts.classes[stmt.name] = _class_facts(stmt)
            if _dataclass_decorated(stmt):
                facts.dataclasses[stmt.name] = _dataclass_schema(stmt)

    visitor = _ScopedVisitor()
    visitor.visit(module.tree)
    facts.mutations = visitor.mutations
    facts.rng_sites = visitor.rng_sites
    return facts


def _mutable_kind(value: ast.expr) -> Optional[str]:
    if isinstance(value, (ast.List, ast.ListComp)):
        return "list"
    if isinstance(value, (ast.Dict, ast.DictComp)):
        return "dict"
    if isinstance(value, (ast.Set, ast.SetComp)):
        return "set"
    if isinstance(value, ast.Call) and isinstance(value.func, ast.Name) \
            and value.func.id in MUTABLE_CONSTRUCTORS:
        return value.func.id
    return None


# ----------------------------------------------------------------------
# Index
# ----------------------------------------------------------------------
@dataclass
class ProjectIndex:
    """Aggregated whole-program view the project rules run against."""

    repo_root: Optional[Path]
    files: Dict[str, FileFacts]  #: dotted module name -> facts
    #: module -> modules it imports (resolved against the index).
    import_graph: Dict[str, Set[str]] = field(default_factory=dict)
    #: ``(module, global_name) -> [mutation site dicts]`` for every mutation
    #: that happens *inside a function body* anywhere in the project
    #: (module-level mutation is import-time initialization, not state).
    runtime_mutations: Dict[Tuple[str, str], List[Dict[str, object]]] = field(
        default_factory=dict
    )

    @classmethod
    def build(
        cls, facts: Sequence[FileFacts], repo_root: Optional[Path] = None
    ) -> "ProjectIndex":
        files = {f.module: f for f in facts}
        index = cls(repo_root=repo_root, files=files)
        for f in facts:
            edges: Set[str] = set()
            for bound, target, _line in f.imports:
                resolved = index.resolve_module(str(target))
                if resolved is not None and resolved != f.module:
                    edges.add(resolved)
            index.import_graph[f.module] = edges
        index._resolve_mutations()
        return index

    # -- resolution helpers ----------------------------------------------
    def resolve_module(self, target: str) -> Optional[str]:
        """Longest prefix of a dotted import target that is an indexed module."""
        parts = target.split(".")
        for cut in range(len(parts), 0, -1):
            candidate = ".".join(parts[:cut])
            if candidate in self.files:
                return candidate
        return None

    def import_bindings(self, module: str) -> Dict[str, str]:
        """``bound name -> fully-qualified target`` for one module."""
        f = self.files.get(module)
        if f is None:
            return {}
        return {str(b): str(t) for b, t, _line in f.imports}

    def resolve_global(self, module: str, dotted: Sequence[str]) -> Optional[Tuple[str, str]]:
        """Resolve a reference ``a.b`` seen in ``module`` to a module-level
        global ``(owner_module, name)``, following import bindings."""
        if not dotted:
            return None
        f = self.files.get(module)
        if f is None:
            return None
        head = dotted[0]
        own_globals = {g["name"] for g in f.mutable_globals} | set(f.assignments)
        if len(dotted) == 1:
            if head in own_globals:
                return (module, head)
            target = self.import_bindings(module).get(head)
            if target is not None and "." in target:
                owner = self.resolve_module(target.rsplit(".", 1)[0])
                if owner is not None:
                    return (owner, target.rsplit(".", 1)[1])
            return None
        # a.b...: head must be a module binding (import x / from p import m)
        target = self.import_bindings(module).get(head)
        if target is None:
            return None
        owner = self.resolve_module(target)
        if owner is not None:
            return (owner, dotted[1])
        return None

    def _resolve_mutations(self) -> None:
        for f in self.files.values():
            for site in f.mutations:
                if not site.get("func"):
                    continue  # module-level = import-time initialization
                resolved = self.resolve_global(f.module, [str(p) for p in site["recv"]])
                if resolved is None:
                    continue
                owner, name = resolved
                owned = self.files.get(owner)
                if owned is None or name not in {g["name"] for g in owned.mutable_globals}:
                    continue
                entry = dict(site)
                entry["in_module"] = f.module
                self.runtime_mutations.setdefault((owner, name), []).append(entry)

    # -- graph queries ----------------------------------------------------
    def reachable_from(self, entry_modules: Sequence[str]) -> Set[str]:
        """Transitive import closure over the indexed modules."""
        seen: Set[str] = set()
        stack = [m for m in entry_modules if m in self.files]
        while stack:
            mod = stack.pop()
            if mod in seen:
                continue
            seen.add(mod)
            stack.extend(self.import_graph.get(mod, ()))
        return seen

    def find_class(self, qualname: str) -> Optional[Tuple[FileFacts, Dict[str, object]]]:
        """Look up ``package.module.Class`` in the index."""
        module, _, cls = qualname.rpartition(".")
        f = self.files.get(module)
        if f is None or cls not in f.classes:
            return None
        return f, f.classes[cls]

    def find_dataclass(self, qualname: str) -> Optional[Tuple[FileFacts, Dict[str, object]]]:
        module, _, cls = qualname.rpartition(".")
        f = self.files.get(module)
        if f is None or cls not in f.dataclasses:
            return None
        return f, f.dataclasses[cls]

    def int_constant(self, module: str, name: str) -> Optional[int]:
        f = self.files.get(module)
        if f is None:
            return None
        return f.int_constants.get(name)


class ProjectRule(Rule):
    """A rule that judges the whole program instead of one module.

    Subclasses implement :meth:`check_project`; the inherited per-file
    :meth:`check` is a no-op so a mixed rule list runs cleanly through
    both tiers of the engine.
    """

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        return iter(())

    def check_project(self, index: ProjectIndex) -> Iterator[Finding]:
        raise NotImplementedError

    def project_finding(
        self, path: str, line: int, message: str, col: int = 1
    ) -> Finding:
        return Finding(
            rule=self.id, name=self.name, path=path, line=line, col=col, message=message
        )


# ----------------------------------------------------------------------
# Facts cache
# ----------------------------------------------------------------------
@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0


class IndexCache:
    """Per-file facts cache keyed on source content digest.

    The cache file is a single JSON document ``{path: {digest, facts}}``.
    Any read problem (missing file, bad JSON, stale ``FACTS_VERSION``)
    degrades to an empty cache; any write problem is ignored — the cache
    is purely an accelerator and never changes results.
    """

    def __init__(self, path: Optional[Path]) -> None:
        self.path = path
        self.stats = CacheStats()
        self._entries: Dict[str, Dict[str, object]] = {}
        self._dirty = False
        if path is not None and path.is_file():
            try:
                data = json.loads(path.read_text(encoding="utf-8"))
                if data.get("version") == FACTS_VERSION:
                    self._entries = dict(data.get("files", {}))
            except (ValueError, OSError):
                self._entries = {}

    def facts_for(self, module: ModuleInfo) -> FileFacts:
        digest = source_digest(module)
        entry = self._entries.get(module.path)
        if entry is not None and entry.get("digest") == digest:
            try:
                facts = FileFacts.from_json(dict(entry["facts"]))  # type: ignore[arg-type]
                self.stats.hits += 1
                return facts
            except (KeyError, TypeError):
                pass
        facts = extract_facts(module)
        self._entries[module.path] = {"digest": digest, "facts": facts.to_json()}
        self._dirty = True
        self.stats.misses += 1
        return facts

    def save(self) -> None:
        if self.path is None or not self._dirty:
            return
        payload = {"version": FACTS_VERSION, "files": self._entries}
        try:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self.path.write_text(json.dumps(payload, sort_keys=True), encoding="utf-8")
        except OSError:  # pragma: no cover - cache is best-effort
            pass


def build_index(
    modules: Sequence[ModuleInfo],
    repo_root: Optional[Path] = None,
    cache: Optional[IndexCache] = None,
) -> ProjectIndex:
    """Extract (or reuse cached) facts for every module and build the index."""
    if cache is None:
        cache = IndexCache(None)
    facts = [cache.facts_for(m) for m in modules]
    cache.save()
    return ProjectIndex.build(facts, repo_root)
