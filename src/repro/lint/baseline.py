"""Committed baseline: known findings that do not fail the build.

The baseline is a JSON file of finding *fingerprints* (rule + path +
message, deliberately excluding line numbers so unrelated edits do not
un-baseline an entry).  Matching is multiset-style: a fingerprint recorded
``count`` times suppresses at most ``count`` live findings, so introducing
a *second* copy of a baselined violation still fails.

``python -m repro.lint --write-baseline`` regenerates the file from the
current findings; review the diff like any other code change.
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Sequence, Tuple

from repro.lint.core import Finding

BASELINE_VERSION = 1


@dataclass
class Baseline:
    """Multiset of accepted finding fingerprints."""

    counts: Counter = field(default_factory=Counter)

    def partition(self, findings: Sequence[Finding]) -> Tuple[List[Finding], List[Finding]]:
        """Split into (new, baselined) preserving order."""
        remaining = Counter(self.counts)
        new: List[Finding] = []
        baselined: List[Finding] = []
        for finding in findings:
            if remaining[finding.fingerprint] > 0:
                remaining[finding.fingerprint] -= 1
                baselined.append(finding)
            else:
                new.append(finding)
        return new, baselined

    @property
    def size(self) -> int:
        return sum(self.counts.values())


def load_baseline(path: Path) -> Baseline:
    """Load ``path``; a missing file is an empty baseline."""
    if not path.is_file():
        return Baseline()
    data = json.loads(path.read_text(encoding="utf-8"))
    if data.get("version") != BASELINE_VERSION:
        raise ValueError(
            f"{path}: unsupported baseline version {data.get('version')!r} "
            f"(expected {BASELINE_VERSION})"
        )
    counts: Counter = Counter()
    for entry in data.get("findings", []):
        counts[entry["fingerprint"]] += int(entry.get("count", 1))
    return Baseline(counts)


def write_baseline(path: Path, findings: Sequence[Finding]) -> int:
    """Write the current findings as the new baseline; returns entry count.

    Entries keep a human-readable rule/path/message alongside the
    fingerprint so baseline diffs review like code.
    """
    counts: Counter = Counter(f.fingerprint for f in findings)
    by_fingerprint: Dict[str, Finding] = {}
    for finding in findings:
        by_fingerprint.setdefault(finding.fingerprint, finding)
    entries = []
    for fingerprint in sorted(counts):
        example = by_fingerprint[fingerprint]
        entries.append(
            {
                "fingerprint": fingerprint,
                "count": counts[fingerprint],
                "rule": example.rule,
                "name": example.name,
                "path": example.path,
                "message": example.message,
            }
        )
    payload = {"version": BASELINE_VERSION, "findings": entries}
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8")
    return len(entries)
