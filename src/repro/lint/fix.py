"""``--fix``: mechanical autofixes for findings with exactly one remedy.

Only H003 (unused imports) is fixable today — the other rules flag design
decisions a human must make, but an unused import has a single correct
edit: delete the binding.  The fixer reuses
:meth:`~repro.lint.rules.hygiene.UnusedImportRule.unused_bindings` so it
can never disagree with the rule about what is removable, respects inline
``# lint: disable`` suppressions on the import line, and is idempotent
(a second pass finds nothing to do).

Edits are line-based and conservative:

* a statement whose every alias is unused is deleted whole
  (``lineno..end_lineno``, so parenthesized multi-line ``from`` imports
  go too);
* a ``from X import a, b`` with only some aliases unused is rewritten in
  place as a single line keeping the survivors in source order;
* a multi-alias ``import a, b`` is rewritten the same way.

Files are re-parsed and re-fixed until a pass removes nothing, because
deleting one import can orphan another only in pathological cases — but
re-checking is cheap and makes idempotence a loop invariant instead of an
argument.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.lint.core import ModuleInfo, load_module, suppressed_rules
from repro.lint.rules.hygiene import UnusedImportRule

#: Safety valve: a file needing more passes than this is left alone.
_MAX_PASSES = 10


def _render_import(node: ast.stmt, keep: List[ast.alias], indent: str) -> str:
    """One-line replacement for an import statement keeping ``keep``."""
    parts = [
        a.name if a.asname is None else f"{a.name} as {a.asname}" for a in keep
    ]
    if isinstance(node, ast.ImportFrom):
        source = "." * node.level + (node.module or "")
        return f"{indent}from {source} import {', '.join(parts)}"
    return f"{indent}import {', '.join(parts)}"


def _one_pass(module: ModuleInfo) -> Optional[List[str]]:
    """New source lines with this pass's removable imports gone, or ``None``
    when nothing changed."""
    removable = [
        (node, alias)
        for node, alias in UnusedImportRule.unused_bindings(module)
        if not _suppressed(module, node)
    ]
    if not removable:
        return None

    by_stmt: Dict[int, Tuple[ast.stmt, List[ast.alias]]] = {}
    for node, alias in removable:
        by_stmt.setdefault(id(node), (node, []))[1].append(alias)

    lines = list(module.source_lines)
    # Bottom-up so earlier statements' line numbers stay valid.
    for node, gone in sorted(
        by_stmt.values(), key=lambda item: item[0].lineno, reverse=True
    ):
        start = node.lineno - 1
        end = (node.end_lineno or node.lineno) - 1
        keep = [a for a in node.names if a not in gone]  # type: ignore[attr-defined]
        if keep:
            indent = lines[start][: len(lines[start]) - len(lines[start].lstrip())]
            lines[start : end + 1] = [_render_import(node, keep, indent)]
        else:
            del lines[start : end + 1]
    return lines


def _suppressed(module: ModuleInfo, node: ast.stmt) -> bool:
    disabled = suppressed_rules(module, node.lineno)
    if disabled is None:
        return False
    return not disabled or "unused-import" in disabled or "H003" in disabled


def fix_unused_imports(path: Path, repo_root: Optional[Path] = None) -> int:
    """Remove unused imports from ``path`` in place.

    Returns the number of rewrite passes applied (0 = file untouched).
    Raises ``SyntaxError`` for unparsable input, like the engine does.
    """
    module = load_module(path, repo_root)
    trailing_newline = path.read_text(encoding="utf-8").endswith("\n")
    passes = 0
    while passes < _MAX_PASSES:
        new_lines = _one_pass(module)
        if new_lines is None:
            break
        passes += 1
        source = "\n".join(new_lines)
        if trailing_newline and source:
            source += "\n"
        path.write_text(source, encoding="utf-8")
        module = load_module(path, repo_root)
    return passes
