"""``python -m repro.lint`` — check the tree against the static contracts.

Examples::

    python -m repro.lint                       # lint src/repro with all rules
    python -m repro.lint src/repro/phy         # one subtree
    python -m repro.lint --select determinism,layering
    python -m repro.lint --ignore unused-import
    python -m repro.lint --json                # machine-readable output
    python -m repro.lint --fix                 # delete unused imports, re-lint
    python -m repro.lint --write-baseline      # accept current findings
    python -m repro.lint --write-schema-lock   # regenerate cache-schema.lock.json
    python -m repro.lint --list-rules

Exit status: 0 when every finding is baselined (or none exist), 1 when new
findings are present, 2 on usage/parse errors.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from repro.lint.baseline import Baseline, load_baseline, write_baseline
from repro.lint.core import find_repo_root, iter_python_files, lint_paths
from repro.lint.fix import fix_unused_imports
from repro.lint.rules import RULES, default_rules

DEFAULT_BASELINE = "lint-baseline.json"

#: Default per-file facts cache for the project pass (under the repo root).
DEFAULT_INDEX_CACHE = Path(".repro-cache") / "lint-index.json"


def _split_csv(value: Optional[str]) -> Optional[List[str]]:
    if value is None:
        return None
    return [part.strip() for part in value.split(",") if part.strip()]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="AST-based determinism / layering / units / obs-bridge linter "
        "with a whole-program pass (RNG provenance, cache-schema drift, "
        "backend parity, worker state)",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        type=Path,
        help="files or directories to lint (default: <repo>/src/repro)",
    )
    parser.add_argument("--json", action="store_true", help="emit JSON to stdout")
    parser.add_argument(
        "--select",
        metavar="RULES",
        help="comma-separated rule ids/names to enable (default: all)",
    )
    parser.add_argument(
        "--ignore",
        metavar="RULES",
        help="comma-separated rule ids/names to disable",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        metavar="FILE",
        help=f"baseline file (default: <repo>/{DEFAULT_BASELINE} when present)",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="write current findings to the baseline file and exit 0",
    )
    parser.add_argument(
        "--fix",
        action="store_true",
        help="delete unused imports (H003) in place, then lint the result",
    )
    parser.add_argument(
        "--write-schema-lock",
        action="store_true",
        help="regenerate cache-schema.lock.json from the current tree and exit",
    )
    parser.add_argument(
        "--index-cache",
        type=Path,
        default=None,
        metavar="FILE",
        help="per-file facts cache for the project pass "
        f"(default: <repo>/{DEFAULT_INDEX_CACHE.as_posix()})",
    )
    parser.add_argument(
        "--no-index-cache",
        action="store_true",
        help="extract facts fresh; neither read nor write the cache",
    )
    parser.add_argument("--list-rules", action="store_true", help="list rules and exit")
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in RULES:
            print(f"{rule.id}  {rule.name:<15} {rule.description}")
        return 0

    try:
        rules = default_rules(_split_csv(args.select), _split_csv(args.ignore))
    except KeyError as exc:
        parser.error(f"unknown rule {exc.args[0]!r} (see --list-rules)")

    repo_root = find_repo_root(Path.cwd())
    paths = list(args.paths)
    if not paths:
        if repo_root is None:
            parser.error("no paths given and no repo root (pyproject.toml) found")
        paths = [repo_root / "src" / "repro"]
    missing = [p for p in paths if not p.exists()]
    if missing:
        parser.error(f"no such path(s): {', '.join(map(str, missing))}")

    index_cache: Optional[Path] = None
    if not args.no_index_cache:
        if args.index_cache is not None:
            index_cache = args.index_cache
        elif repo_root is not None:
            index_cache = repo_root / DEFAULT_INDEX_CACHE

    if args.write_schema_lock:
        return _write_schema_lock(parser, paths, repo_root, index_cache)

    fixed_files = 0
    if args.fix:
        for path in iter_python_files(paths):
            try:
                if fix_unused_imports(path, repo_root):
                    fixed_files += 1
            except (SyntaxError, UnicodeDecodeError) as exc:
                print(f"error: {path}: {exc}", file=sys.stderr)
                return 2

    baseline_path = args.baseline
    if baseline_path is None and repo_root is not None:
        baseline_path = repo_root / DEFAULT_BASELINE

    ctx = lint_paths(paths, rules, repo_root, index_cache=index_cache)
    if ctx.errors:
        for error in ctx.errors:
            print(f"error: {error}", file=sys.stderr)
        return 2

    if args.write_baseline:
        if baseline_path is None:
            parser.error("--write-baseline needs --baseline FILE outside a repo")
        entries = write_baseline(baseline_path, ctx.findings)
        print(
            f"wrote {entries} baseline entr{'y' if entries == 1 else 'ies'} "
            f"({len(ctx.findings)} finding(s)) to {baseline_path}"
        )
        return 0

    baseline = load_baseline(baseline_path) if baseline_path is not None else Baseline()
    new, baselined = baseline.partition(ctx.findings)

    if args.json:
        payload = {
            "checked_files": ctx.checked_files,
            "rules": [rule.id for rule in rules],
            "findings": [f.to_json() for f in new],
            "baselined": [f.to_json() for f in baselined],
            "inline_suppressed": ctx.inline_suppressed,
            "fixed_files": fixed_files,
            "index_cache": {
                "hits": ctx.index_cache_hits,
                "misses": ctx.index_cache_misses,
            },
            "exit_status": 1 if new else 0,
        }
        print(json.dumps(payload, indent=2))
    else:
        for finding in new:
            print(finding.render())
        summary = (
            f"{ctx.checked_files} file(s) checked, {len(new)} new finding(s), "
            f"{len(baselined)} baselined, {ctx.inline_suppressed} inline-suppressed"
        )
        if args.fix:
            summary += f", {fixed_files} file(s) fixed"
        print(summary if not new else f"\n{summary}")
    return 1 if new else 0


def _write_schema_lock(
    parser: argparse.ArgumentParser,
    paths: Sequence[Path],
    repo_root: Optional[Path],
    index_cache: Optional[Path],
) -> int:
    from repro.lint.core import load_module
    from repro.lint.project import IndexCache, ProjectIndex
    from repro.lint.rules.cache_schema import write_schema_lock

    if repo_root is None:
        parser.error("--write-schema-lock needs a repo root (pyproject.toml)")
    modules = []
    for path in iter_python_files(paths):
        try:
            modules.append(load_module(path, repo_root))
        except (SyntaxError, UnicodeDecodeError) as exc:
            print(f"error: {path}: {exc}", file=sys.stderr)
            return 2
    cache = IndexCache(index_cache)
    facts = [cache.facts_for(m) for m in modules]
    cache.save()
    index = ProjectIndex.build(facts, repo_root)
    lock = write_schema_lock(index, repo_root)
    if lock is None:
        print(
            "error: schema roots (SimConfig / CollectionResult) or "
            "CACHE_SCHEMA_VERSION not found under the linted paths",
            file=sys.stderr,
        )
        return 2
    print(f"wrote {lock}")
    return 0
