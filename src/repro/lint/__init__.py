"""Static analysis for the repo's determinism and layering contracts.

The simulator's correctness rests on source-level invariants that runtime
tests can only spot-check:

* **Determinism** — every stochastic draw goes through a named
  :class:`repro.sim.rng.RngManager` stream; nothing reads the wall clock
  or the process-global ``random`` state inside the simulation.
* **Layering** — the physical, link, and network layers couple only
  through the four-bit contract in :mod:`repro.core.interfaces`.
* **Units** — dBm (log domain) and mW (linear domain) never mix in one
  arithmetic expression.
* **Stats/obs bridge** — every layer stats dataclass bridges all of its
  counters into the :mod:`repro.obs` metrics registry.

A second, whole-program tier (:mod:`repro.lint.project`) checks contracts
no single file shows: RNG-stream provenance (R001), cache-schema drift
against the committed ``cache-schema.lock.json`` (C001), fast/exact
backend parity (P001), and worker-state safety (W001).

``python -m repro.lint`` checks these (plus Python hygiene) over the AST,
with per-rule enable/disable, inline ``# lint: disable=...`` suppressions,
and a committed baseline so legacy findings never block CI.
"""

from repro.lint.baseline import Baseline, load_baseline, write_baseline
from repro.lint.core import Finding, LintContext, ModuleInfo, Rule, lint_paths
from repro.lint.fix import fix_unused_imports
from repro.lint.project import (
    FileFacts,
    IndexCache,
    ProjectIndex,
    ProjectRule,
    build_index,
    extract_facts,
)
from repro.lint.rules import RULES, default_rules, rules_by_name

__all__ = [
    "Baseline",
    "FileFacts",
    "Finding",
    "IndexCache",
    "LintContext",
    "ModuleInfo",
    "ProjectIndex",
    "ProjectRule",
    "RULES",
    "Rule",
    "build_index",
    "default_rules",
    "extract_facts",
    "fix_unused_imports",
    "lint_paths",
    "load_baseline",
    "rules_by_name",
    "write_baseline",
]
