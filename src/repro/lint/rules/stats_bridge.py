"""S001: every layer stats counter must reach the obs metrics registry.

PR 2 established the pattern: each layer keeps its counters as cheap
dataclass fields (``MacStats``, ``EstimatorStats``, ...) and bridges them
into the :class:`repro.obs.metrics.MetricsRegistry` through a
``register_into`` method, under a ``METRICS_PREFIX`` of the canonical
``layer.component`` form.  Drift creeps in silently: add a counter field,
forget the bridge, and dashboards/obs CLI simply never see it — no test
fails.

This rule makes the contract static.  For every ``@dataclass`` whose name
ends in ``Stats`` inside a layer package it checks that:

* a ``METRICS_PREFIX`` string constant exists,
* a ``register_into`` method exists, and
* the method bridges **every** numeric field — either wholesale via
  ``register_dataclass_counters`` (which iterates the fields at runtime),
  or, when registering manually, with a metric-name string literal whose
  final dotted segment matches each field name.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Set

from repro.lint.core import Finding, ModuleInfo, Rule, qualified_name

#: Packages whose Stats dataclasses feed the obs bridge.
LAYER_PACKAGES = (
    "repro.phy",
    "repro.link",
    "repro.core",
    "repro.net",
    "repro.sim",
    "repro.workloads",
    "repro.faults",
    "repro.obs",
)

NUMERIC_ANNOTATIONS = {"int", "float"}
REGISTER_HELPERS = {"register_dataclass_counters"}
REGISTRY_METHODS = {"counter", "gauge", "histogram"}


def _is_dataclass(node: ast.ClassDef) -> bool:
    for deco in node.decorator_list:
        target = deco.func if isinstance(deco, ast.Call) else deco
        qual = qualified_name(target)
        if qual in ("dataclass", "dataclasses.dataclass"):
            return True
    return False


def _numeric_fields(node: ast.ClassDef) -> List[str]:
    fields = []
    for stmt in node.body:
        if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            ann = stmt.annotation
            if isinstance(ann, ast.Name) and ann.id in NUMERIC_ANNOTATIONS:
                fields.append(stmt.target.id)
            elif isinstance(ann, ast.Constant) and ann.value in NUMERIC_ANNOTATIONS:
                fields.append(stmt.target.id)
    return fields


def _class_constant(node: ast.ClassDef, name: str) -> bool:
    for stmt in node.body:
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name) and target.id == name:
                    return True
        if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            if stmt.target.id == name and stmt.value is not None:
                return True
    return False


def _find_method(node: ast.ClassDef, name: str) -> Optional[ast.FunctionDef]:
    for stmt in node.body:
        if isinstance(stmt, ast.FunctionDef) and stmt.name == name:
            return stmt
    return None


def _bridged_field_segments(method: ast.FunctionDef) -> Optional[Set[str]]:
    """Field names manually bridged in ``register_into``.

    Returns None when the method delegates to ``register_dataclass_counters``
    — the helper iterates ``dataclasses.fields`` at runtime, so every
    numeric field is covered by construction.
    """
    segments: Set[str] = set()
    for sub in ast.walk(method):
        if not isinstance(sub, ast.Call):
            continue
        qual = qualified_name(sub.func)
        if qual is not None and qual.split(".")[-1] in REGISTER_HELPERS:
            return None
        if (
            isinstance(sub.func, ast.Attribute)
            and sub.func.attr in REGISTRY_METHODS
            and sub.args
            and isinstance(sub.args[0], ast.Constant)
            and isinstance(sub.args[0].value, str)
        ):
            segments.add(sub.args[0].value.rsplit(".", 1)[-1])
    return segments


class StatsBridgeRule(Rule):
    id = "S001"
    name = "stats-bridge"
    description = (
        "every *Stats dataclass in a layer package declares METRICS_PREFIX and "
        "bridges all numeric fields into the obs registry via register_into"
    )

    def _in_scope(self, module: ModuleInfo) -> bool:
        if module.module.startswith("repro."):
            return module.in_packages(LAYER_PACKAGES)
        return True

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        if not self._in_scope(module):
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            if not node.name.endswith("Stats") or not _is_dataclass(node):
                continue
            fields = _numeric_fields(node)
            if not fields:
                continue
            if not _class_constant(node, "METRICS_PREFIX"):
                yield self.finding(
                    module,
                    node,
                    f"stats dataclass `{node.name}` has no METRICS_PREFIX — "
                    "obs metrics need a canonical layer.component name",
                )
            method = _find_method(node, "register_into")
            if method is None:
                yield self.finding(
                    module,
                    node,
                    f"stats dataclass `{node.name}` has no register_into — its "
                    "counters never reach the obs metrics registry",
                )
                continue
            bridged = _bridged_field_segments(method)
            if bridged is None:
                continue  # register_dataclass_counters covers every field
            for field_name in fields:
                if field_name not in bridged:
                    yield self.finding(
                        module,
                        method,
                        f"`{node.name}.{field_name}` is never registered in "
                        "register_into — obs dashboards will silently miss it",
                    )
