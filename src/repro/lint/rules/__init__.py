"""Rule registry: one instance of every lint rule, in report order."""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from repro.lint.core import Rule
from repro.lint.rules.determinism import DeterminismRule
from repro.lint.rules.hygiene import FloatEqualityRule, MutableDefaultRule, UnusedImportRule
from repro.lint.rules.layering import LayeringRule
from repro.lint.rules.stats_bridge import StatsBridgeRule
from repro.lint.rules.units import UnitsRule

#: All rules, by id order.  Every rule is on by default.
RULES: List[Rule] = [
    DeterminismRule(),
    LayeringRule(),
    UnitsRule(),
    StatsBridgeRule(),
    MutableDefaultRule(),
    FloatEqualityRule(),
    UnusedImportRule(),
]


def rules_by_name() -> Dict[str, Rule]:
    """Lookup accepting either the id (``D001``) or the name."""
    table: Dict[str, Rule] = {}
    for rule in RULES:
        table[rule.id] = rule
        table[rule.name] = rule
    return table


def default_rules(
    select: Optional[Sequence[str]] = None,
    ignore: Optional[Sequence[str]] = None,
) -> List[Rule]:
    """The enabled rule set after ``--select`` / ``--ignore`` filtering.

    Raises ``KeyError`` for an unknown rule id/name so typos fail loudly.
    """
    table = rules_by_name()

    def resolve(keys: Iterable[str]) -> List[Rule]:
        return [table[k] for k in keys]

    enabled = resolve(select) if select else list(RULES)
    if ignore:
        dropped = {id(r) for r in resolve(ignore)}
        enabled = [r for r in enabled if id(r) not in dropped]
    return enabled
