"""Rule registry: one instance of every lint rule, in report order.

Two tiers share one registry: per-file AST rules (D/L/U/S/H) and
whole-program project rules (R/C/P/W — see :mod:`repro.lint.project`).
``--select`` / ``--ignore`` / inline suppressions treat them uniformly.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from repro.lint.core import Rule
from repro.lint.rules.backend_parity import BackendParityRule
from repro.lint.rules.cache_schema import CacheSchemaRule
from repro.lint.rules.determinism import DeterminismRule
from repro.lint.rules.hygiene import FloatEqualityRule, MutableDefaultRule, UnusedImportRule
from repro.lint.rules.layering import LayeringRule
from repro.lint.rules.rng_provenance import RngProvenanceRule
from repro.lint.rules.stats_bridge import StatsBridgeRule
from repro.lint.rules.units import UnitsRule
from repro.lint.rules.worker_state import WorkerStateRule

#: All rules, file tier then project tier.  Every rule is on by default.
RULES: List[Rule] = [
    DeterminismRule(),
    LayeringRule(),
    UnitsRule(),
    StatsBridgeRule(),
    MutableDefaultRule(),
    FloatEqualityRule(),
    UnusedImportRule(),
    RngProvenanceRule(),
    CacheSchemaRule(),
    BackendParityRule(),
    WorkerStateRule(),
]


def rules_by_name(rules: Optional[Sequence[Rule]] = None) -> Dict[str, Rule]:
    """Lookup accepting either the id (``D001``) or the name.

    Raises ``ValueError`` on a duplicate id or name: with two registration
    sites (file rules and project rules) a silent last-wins table would
    make half a collision unreachable from ``--select``/``--ignore`` and
    from inline suppressions.
    """
    table: Dict[str, Rule] = {}
    for rule in rules if rules is not None else RULES:
        for key in (rule.id, rule.name):
            if not key:
                raise ValueError(f"rule {rule!r} has an empty id or name")
            existing = table.get(key)
            if existing is not None and existing is not rule:
                raise ValueError(
                    f"duplicate rule registration for {key!r}: "
                    f"{type(existing).__name__} and {type(rule).__name__}"
                )
            table[key] = rule
    return table


def default_rules(
    select: Optional[Sequence[str]] = None,
    ignore: Optional[Sequence[str]] = None,
) -> List[Rule]:
    """The enabled rule set after ``--select`` / ``--ignore`` filtering.

    Raises ``KeyError`` for an unknown rule id/name so typos fail loudly.
    """
    table = rules_by_name()

    def resolve(keys: Iterable[str]) -> List[Rule]:
        return [table[k] for k in keys]

    enabled = resolve(select) if select else list(RULES)
    if ignore:
        dropped = {id(r) for r in resolve(ignore)}
        enabled = [r for r in enabled if id(r) not in dropped]
    return enabled
