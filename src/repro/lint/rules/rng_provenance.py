"""R001: every RNG stream in the simulated stack traces to ``derive_seed``.

The bit-reproducibility story (DESIGN.md §7, §12) rests on two properties
no single file shows:

* **Provenance** — every ``random.Random`` / numpy ``Generator`` lives on a
  seed derived via :func:`repro.sim.rng.derive_seed` from the master seed.
  A literal seed, an arithmetic seed (``master + nid``), or an unseeded
  construction silently decouples a component from the master seed, and
  unseeded constructions draw OS entropy.
* **Stream identity** — stream names are *structured literals*.  The first
  key component must be a string literal (the greppable namespace), no
  component may be built by string formatting (``f"mac-{nid}"`` defeats
  both grep and the collision check below — pass ``("mac", nid)``), and two
  distinct call sites must not derive the identical fully-literal stream
  tuple: they would receive correlated randomness while reading as
  independent.

Collision scope is deliberately conservative so that independent
``RngManager`` instances (one per scenario function, one per test) do not
cross-talk: ``derive_seed`` call sites collide per *module* (they share the
caller's master seed by construction), ``stream``/``cached_stream``/``fork``
call sites collide only within one function scope and receiver expression.
``stream`` and ``cached_stream`` are the same keyspace (the manager interns
by key) and are grouped together.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterator, List, Tuple

from repro.lint.core import Finding
from repro.lint.project import ProjectIndex, ProjectRule
from repro.lint.rules.determinism import DETERMINISTIC_PACKAGES, EXEMPT_MODULES


def _in_scope(module: str) -> bool:
    if module in EXEMPT_MODULES:
        return False
    if not module.startswith("repro."):
        return False
    for pkg in DETERMINISTIC_PACKAGES:
        if module == pkg or module.startswith(pkg + "."):
            return True
    return False


def _literal_tuple(components: List[List[object]]) -> Tuple[object, ...]:
    """The stream tuple when every component is literal, else ``()``."""
    if not components or any(kind != "lit" for kind, _v in components):
        return ()
    return tuple(v for _k, v in components)


class RngProvenanceRule(ProjectRule):
    id = "R001"
    name = "rng-provenance"
    description = (
        "every Random/Generator flows from derive_seed with literal, "
        "collision-free stream names in the deterministic packages"
    )

    def check_project(self, index: ProjectIndex) -> Iterator[Finding]:
        # (group key) -> [(line, site, facts)] for collision detection.
        derive_groups: Dict[Tuple[object, ...], List[Tuple[int, Dict[str, object], str]]] = (
            defaultdict(list)
        )
        stream_groups: Dict[Tuple[object, ...], List[Tuple[int, Dict[str, object], str]]] = (
            defaultdict(list)
        )
        for module, facts in sorted(index.files.items()):
            if not _in_scope(module):
                continue
            for site in facts.rng_sites:
                kind = str(site["kind"])
                if kind in ("random", "bitgen", "default_rng", "generator"):
                    yield from self._check_construction(facts.path, site)
                    continue
                yield from self._check_components(facts.path, site)
                components = site.get("components", [])
                tup = _literal_tuple(list(components))  # type: ignore[arg-type]
                if not tup:
                    continue
                line = int(site["line"])  # type: ignore[arg-type]
                if kind == "derive_seed":
                    derive_groups[(module, tup)].append((line, site, facts.path))
                else:
                    norm = "stream" if kind == "cached_stream" else kind
                    key = (module, str(site["scope"]), str(site["recv"]), norm, tup)
                    stream_groups[key].append((line, site, facts.path))

        yield from self._collisions(derive_groups, "derive_seed")
        yield from self._collisions(stream_groups, "stream")

    # ------------------------------------------------------------------
    def _check_construction(
        self, path: str, site: Dict[str, object]
    ) -> Iterator[Finding]:
        kind = str(site["kind"])
        line, col = int(site["line"]), int(site["col"])  # type: ignore[arg-type]
        snippet = str(site.get("snippet", ""))
        labels = {
            "random": "Random",
            "bitgen": "bit generator",
            "default_rng": "default_rng",
            "generator": "Generator",
        }
        if not site.get("seeded"):
            yield self.project_finding(
                path,
                line,
                f"unseeded {labels[kind]} construction `{snippet}` draws OS "
                "entropy — seed it from derive_seed(master, ...)",
                col,
            )
            return
        provenance = str(site.get("provenance"))
        if kind == "generator" and provenance == "bitgen":
            return  # judged at the nested PCG64(...) site
        if provenance != "derive_seed":
            yield self.project_finding(
                path,
                line,
                f"{labels[kind]} seed in `{snippet}` does not flow from "
                "derive_seed — every simulated-stack stream must be a named "
                "derive_seed(master, ...) derivation",
                col,
            )

    def _check_components(
        self, path: str, site: Dict[str, object]
    ) -> Iterator[Finding]:
        kind = str(site["kind"])
        line, col = int(site["line"]), int(site["col"])  # type: ignore[arg-type]
        components = list(site.get("components", []))  # type: ignore[arg-type]
        if not components:
            if kind == "fork":
                return  # fork() with no key is not used, but harmless
            yield self.project_finding(
                path,
                line,
                f"`{kind}()` call with an empty stream name — name the "
                "stream with literal components",
                col,
            )
            return
        first_kind, first_value = components[0][0], components[0][1]
        if first_kind != "lit" or not isinstance(first_value, str):
            yield self.project_finding(
                path,
                line,
                f"dynamic stream name in `{kind}(...)`: first component "
                f"`{first_value}` is not a string literal — the leading "
                "component is the greppable stream namespace",
                col,
            )
        for comp_kind, comp_value in components[1:]:
            if comp_kind == "str-built":
                yield self.project_finding(
                    path,
                    line,
                    f"string-built stream-name component `{comp_value}` in "
                    f"`{kind}(...)` — pass structured parts "
                    '(e.g. ("mac", nid)) so collisions stay detectable',
                    col,
                )

    def _collisions(
        self,
        groups: Dict[Tuple[object, ...], List[Tuple[int, Dict[str, object], str]]],
        what: str,
    ) -> Iterator[Finding]:
        for key in sorted(groups, key=repr):
            sites = sorted(groups[key], key=lambda s: s[0])
            if len(sites) < 2:
                continue
            tup = key[-1]
            for line, site, path in sites[1:]:
                yield self.project_finding(
                    path,
                    line,
                    f"duplicate {what} stream tuple {tup!r} — another call "
                    "site already derives this stream; distinct draws need "
                    "distinct names (or hoist the shared stream to one site)",
                    int(site["col"]),  # type: ignore[arg-type]
                )
