"""U001: dBm (log domain) and mW (linear domain) must not mix.

The channel code carries powers in both domains — dBm through the link
budget, mW where noise sums.  Adding or comparing across the domains is
always a bug (``-90 dBm`` is ``1e-9 mW``, not ``-90 mW``), and the repo's
naming convention makes it statically visible: variables and attributes
end in ``_dbm`` / ``_db`` (log) or ``_mw`` / ``_w`` (linear).  This rule
flags ``+``/``-`` arithmetic and ``<``/``>``/``==`` comparisons whose
operands carry suffixes from *different* domains.  Conversions go through
the dedicated helpers (``dbm_to_mw`` and friends), whose call expressions
carry no suffix and therefore never trip the rule.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.lint.core import Finding, ModuleInfo, Rule

LOG_SUFFIXES = ("_dbm", "_db")
LINEAR_SUFFIXES = ("_mw", "_w")


def _domain_of(node: ast.expr) -> Optional[str]:
    """``"log"`` / ``"linear"`` when the expression names a unit-suffixed
    variable or attribute, else None."""
    if isinstance(node, ast.Name):
        ident = node.id
    elif isinstance(node, ast.Attribute):
        ident = node.attr
    elif isinstance(node, ast.UnaryOp):
        return _domain_of(node.operand)
    else:
        return None
    lowered = ident.lower()
    # _dbm must win over _db as a suffix check ordering concern; both are log.
    for suffix in LOG_SUFFIXES:
        if lowered.endswith(suffix):
            return "log"
    for suffix in LINEAR_SUFFIXES:
        if lowered.endswith(suffix):
            return "linear"
    return None


def _ident_of(node: ast.expr) -> str:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.UnaryOp):
        return _ident_of(node.operand)
    return "<expr>"


class UnitsRule(Rule):
    id = "U001"
    name = "units"
    description = "no +/-/comparison mixing _dbm/_db (log) with _mw/_w (linear) operands"

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.BinOp) and isinstance(node.op, (ast.Add, ast.Sub)):
                yield from self._check_pair(module, node, node.left, node.right)
            elif isinstance(node, ast.Compare):
                operands = [node.left, *node.comparators]
                for left, right in zip(operands, operands[1:]):
                    yield from self._check_pair(module, node, left, right)

    def _check_pair(
        self, module: ModuleInfo, node: ast.AST, left: ast.expr, right: ast.expr
    ) -> Iterator[Finding]:
        ld, rd = _domain_of(left), _domain_of(right)
        if ld is not None and rd is not None and ld != rd:
            yield self.finding(
                module,
                node,
                f"mixes {ld}-domain `{_ident_of(left)}` with {rd}-domain "
                f"`{_ident_of(right)}` in one expression — convert via the "
                "dbm/mw helpers first",
            )
