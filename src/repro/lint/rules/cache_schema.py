"""C001: SimConfig schema changes must bump ``CACHE_SCHEMA_VERSION``.

The on-disk result cache keys every run by a canonical digest of its full
configuration (``repro.runner.hashing``).  Adding, removing, reordering, or
re-defaulting a field on :class:`~repro.sim.network.SimConfig` — or on any
dataclass reachable from its fields — changes what that digest covers, so
stale cached results would be served for configs that no longer mean the
same thing.  PRs 5–8 each bumped ``CACHE_SCHEMA_VERSION`` by hand for
exactly this reason (2→3→4→5); this rule automates the reviewer vigilance.

The committed ``cache-schema.lock.json`` snapshots, per digest-relevant
dataclass, the ordered field names / annotations / defaults (field *order*
matters: ``canonical_bytes`` serializes dataclasses in definition order),
plus the ``CACHE_SCHEMA_VERSION`` the snapshot was taken at.  The rule
recomputes the snapshot from the project index and fails when:

* the lock file is missing,
* the schema changed while the version did not (the drift this rule
  exists to catch), or
* the version changed (or the schema changed *with* a bump) but the lock
  was not regenerated — run ``python -m repro.lint --write-schema-lock``
  and commit the diff; it reviews like code.

Digest-relevant dataclasses are found by closure: start from the roots
(``SimConfig`` and ``CollectionResult``, the cached payload), and follow
every identifier in a field annotation or default through import bindings
and top-level type aliases (``FaultEvent = Union[NodeCrash, ...]``) to
other indexed dataclasses.
"""

from __future__ import annotations

import json
import re
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.lint.core import Finding
from repro.lint.project import FileFacts, ProjectIndex, ProjectRule

LOCK_FILENAME = "cache-schema.lock.json"
LOCK_VERSION = 1

#: Closure roots: the config every digest hashes, and the cached payload.
SCHEMA_ROOTS = (
    "repro.sim.network.SimConfig",
    "repro.metrics.collection_stats.CollectionResult",
    "repro.campaign.spec.SimulationSpec",
    "repro.campaign.spec.SimulationResult",
)

#: Where the version constant lives.
VERSION_MODULE = "repro.runner.hashing"
VERSION_NAME = "CACHE_SCHEMA_VERSION"

_IDENT_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_]*")


def _identifiers(text: str) -> List[str]:
    return _IDENT_RE.findall(text)


def _resolve_identifier(
    index: ProjectIndex, module: str, name: str
) -> Optional[Tuple[str, str]]:
    """Resolve ``name`` as seen from ``module`` to ``(owner_module, name)``."""
    f = index.files.get(module)
    if f is None:
        return None
    if name in f.dataclasses or name in f.assignments:
        return (module, name)
    target = index.import_bindings(module).get(name)
    if target is None:
        return None
    owner = index.resolve_module(target)
    if owner is None:
        return None
    if owner == target:
        return None  # a module import, not a symbol
    return (owner, target[len(owner) + 1 :].split(".")[0])


def compute_schema(index: ProjectIndex) -> Optional[Dict[str, object]]:
    """The current schema snapshot, or ``None`` when the tree under lint
    does not contain the roots (a partial run — the rule stays silent)."""
    version = index.int_constant(VERSION_MODULE, VERSION_NAME)
    roots = [qual for qual in SCHEMA_ROOTS if index.find_dataclass(qual) is not None]
    if version is None or not roots:
        return None

    dataclasses: Dict[str, List[Dict[str, object]]] = {}
    worklist: List[str] = list(roots)
    seen_aliases: Set[Tuple[str, str]] = set()
    while worklist:
        qual = worklist.pop()
        if qual in dataclasses:
            continue
        found = index.find_dataclass(qual)
        if found is None:
            continue
        facts, schema = found
        fields = [dict(f) for f in schema["fields"]]  # type: ignore[union-attr]
        dataclasses[qual] = fields
        for field_schema in fields:
            text = "%s %s" % (field_schema["type"], field_schema["default"] or "")
            worklist.extend(_expand(index, facts, text, seen_aliases))

    return {
        "lock_version": LOCK_VERSION,
        "cache_schema_version": version,
        "dataclasses": {q: dataclasses[q] for q in sorted(dataclasses)},
    }


def _expand(
    index: ProjectIndex,
    facts: FileFacts,
    text: str,
    seen_aliases: Set[Tuple[str, str]],
) -> List[str]:
    """Dataclass qualnames referenced (possibly through type aliases) by
    the identifiers in ``text``, as seen from ``facts``'s module."""
    out: List[str] = []
    for ident in _identifiers(text):
        resolved = _resolve_identifier(index, facts.module, ident)
        if resolved is None:
            continue
        owner, name = resolved
        owner_facts = index.files.get(owner)
        if owner_facts is None:
            continue
        if name in owner_facts.dataclasses:
            out.append("%s.%s" % (owner, name))
        elif name in owner_facts.assignments and (owner, name) not in seen_aliases:
            # A top-level alias (FaultEvent = Union[...], CC2420 =
            # RadioParams(...)): expand its value in the owner's context.
            seen_aliases.add((owner, name))
            out.extend(_expand(index, owner_facts, owner_facts.assignments[name], seen_aliases))
    return out


def lock_path(repo_root: Path) -> Path:
    return repo_root / LOCK_FILENAME


def load_lock(repo_root: Path) -> Optional[Dict[str, object]]:
    path = lock_path(repo_root)
    if not path.is_file():
        return None
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except ValueError:
        return None
    if data.get("lock_version") != LOCK_VERSION:
        return None
    return data


def write_schema_lock(index: ProjectIndex, repo_root: Path) -> Optional[Path]:
    """Regenerate the committed lock from the current tree."""
    schema = compute_schema(index)
    if schema is None:
        return None
    path = lock_path(repo_root)
    path.write_text(json.dumps(schema, indent=2, sort_keys=True) + "\n", encoding="utf-8")
    return path


class CacheSchemaRule(ProjectRule):
    id = "C001"
    name = "cache-schema"
    description = (
        "digest-relevant dataclass schema changes require a "
        "CACHE_SCHEMA_VERSION bump and a regenerated cache-schema.lock.json"
    )

    def check_project(self, index: ProjectIndex) -> Iterator[Finding]:
        if index.repo_root is None:
            return
        current = compute_schema(index)
        if current is None:
            return
        lock = load_lock(index.repo_root)
        if lock is None:
            yield self.project_finding(
                LOCK_FILENAME,
                1,
                "cache-schema lock file is missing or unreadable — run "
                "`python -m repro.lint --write-schema-lock` and commit it",
            )
            return

        cur_version = current["cache_schema_version"]
        lock_version = lock.get("cache_schema_version")
        cur_schema: Dict[str, object] = dict(current["dataclasses"])  # type: ignore[arg-type]
        lock_schema: Dict[str, object] = dict(lock.get("dataclasses", {}))  # type: ignore[arg-type]

        if cur_schema == lock_schema:
            if cur_version != lock_version:
                yield self.project_finding(
                    LOCK_FILENAME,
                    1,
                    f"{VERSION_NAME} is {cur_version} but the lock records "
                    f"{lock_version} — regenerate with --write-schema-lock",
                )
            return

        changed = sorted(
            set(cur_schema) ^ set(lock_schema)
            | {q for q in set(cur_schema) & set(lock_schema) if cur_schema[q] != lock_schema[q]}
        )
        if cur_version == lock_version:
            # The drift this rule exists for: schema moved, version did not.
            for qual in changed:
                path, line = self._anchor(index, qual)
                yield self.project_finding(
                    path,
                    line,
                    f"digest-relevant schema of `{qual}` changed without a "
                    f"{VERSION_NAME} bump (still {cur_version}) — cached "
                    "results keyed on the old schema would be served for "
                    "changed configs; bump the version in "
                    "repro/runner/hashing.py and regenerate the lock",
                )
        else:
            yield self.project_finding(
                LOCK_FILENAME,
                1,
                f"schema changed ({', '.join(changed)}) and {VERSION_NAME} "
                f"was bumped to {cur_version}, but the lock still records "
                "the old snapshot — regenerate with --write-schema-lock",
            )

    @staticmethod
    def _anchor(index: ProjectIndex, qualname: str) -> Tuple[str, int]:
        found = index.find_dataclass(qualname)
        if found is None:
            return (LOCK_FILENAME, 1)
        facts, schema = found
        return (facts.path, int(schema["line"]))  # type: ignore[arg-type]
