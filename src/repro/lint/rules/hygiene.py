"""Python hygiene rules: H001 mutable defaults, H002 float ==, H003 unused imports.

Small, classic footguns that have each bitten simulation codebases:

* **H001** — a mutable default argument (``def f(x=[])``) is shared across
  every call; in a simulator that aliases per-node state across nodes.
* **H002** — ``x == 0.3``-style comparison against a non-trivial float
  literal; binary floats make these silently false.  Comparisons against
  exact sentinels (``0.0``, ``1.0``, ``-1.0``) are idiomatic for values
  *assigned* from those literals and stay allowed.
* **H003** — an import nothing uses: dead coupling that widens the import
  graph the layering rule polices.  ``__init__.py`` re-export surfaces and
  names listed in ``__all__`` are exempt.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Set, Tuple

from repro.lint.core import Finding, ModuleInfo, Rule

MUTABLE_CALLS = {"list", "dict", "set"}

#: Floats that compare exactly when assigned from the same literal.
EXACT_FLOAT_SENTINELS = {0.0, 1.0, -1.0}


class MutableDefaultRule(Rule):
    id = "H001"
    name = "mutable-default"
    description = "no list/dict/set (display or constructor) as a default argument"

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            defaults = list(node.args.defaults) + [
                d for d in node.args.kw_defaults if d is not None
            ]
            for default in defaults:
                if self._is_mutable(default):
                    yield self.finding(
                        module,
                        default,
                        f"mutable default argument in `{node.name}()` — one "
                        "instance is shared across every call; default to "
                        "None and construct inside",
                    )

    @staticmethod
    def _is_mutable(node: ast.expr) -> bool:
        if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)):
            return True
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            return node.func.id in MUTABLE_CALLS
        return False


class FloatEqualityRule(Rule):
    id = "H002"
    name = "float-equality"
    description = "no ==/!= against non-trivial float literals (use a tolerance)"

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left, *node.comparators]
            for op, left, right in zip(node.ops, operands, operands[1:]):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                for operand in (left, right):
                    value = self._float_literal(operand)
                    if value is not None and value not in EXACT_FLOAT_SENTINELS:
                        yield self.finding(
                            module,
                            node,
                            f"exact ==/!= against float literal {value!r} — "
                            "binary floats make this silently false; compare "
                            "with a tolerance (math.isclose)",
                        )
                        break

    @staticmethod
    def _float_literal(node: ast.expr):
        if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
            node = node.operand
            if isinstance(node, ast.Constant) and type(node.value) is float:
                return -node.value
            return None
        if isinstance(node, ast.Constant) and type(node.value) is float:
            return node.value
        return None


class UnusedImportRule(Rule):
    id = "H003"
    name = "unused-import"
    description = "every imported name is referenced (or re-exported via __all__/__init__)"

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        for node, alias in self.unused_bindings(module):
            if isinstance(node, ast.Import):
                yield self.finding(module, node, f"`import {alias.name}` is never used")
            else:
                source = node.module or "." * node.level  # type: ignore[union-attr]
                yield self.finding(
                    module, node, f"`from {source} import {alias.name}` is never used"
                )

    @classmethod
    def unused_bindings(
        cls, module: ModuleInfo
    ) -> List[Tuple[ast.stmt, ast.alias]]:
        """Every ``(import statement, alias)`` pair nothing references.

        Shared by :meth:`check` and the ``--fix`` rewriter
        (:mod:`repro.lint.fix`) so they can never disagree about what is
        removable.
        """
        if module.path.endswith("__init__.py") or module.module.endswith("__init__"):
            return []  # re-export surface by convention
        used = cls._used_names(module.tree)
        exported = cls._dunder_all(module.tree)
        out: List[Tuple[ast.stmt, ast.alias]] = []
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    bound = alias.asname or alias.name.split(".")[0]
                    if bound not in used and bound not in exported:
                        out.append((node, alias))
            elif isinstance(node, ast.ImportFrom):
                if node.module == "__future__":
                    continue
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    bound = alias.asname or alias.name
                    if bound not in used and bound not in exported:
                        out.append((node, alias))
        return out

    @classmethod
    def _used_names(cls, tree: ast.Module) -> Set[str]:
        used: Set[str] = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
                used.add(node.id)
            elif isinstance(node, ast.AnnAssign):
                cls._collect_string_annotation(node.annotation, used)
            elif isinstance(node, ast.arg) and node.annotation is not None:
                cls._collect_string_annotation(node.annotation, used)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if node.returns is not None:
                    cls._collect_string_annotation(node.returns, used)
        return used

    @staticmethod
    def _collect_string_annotation(annotation: ast.expr, used: Set[str]) -> None:
        """Names referenced inside quoted annotations (``x: "Foo[Bar]"``).

        Quoted annotations stay plain strings in the AST, so TYPE_CHECKING
        imports used only there would otherwise read as unused.
        """
        for node in ast.walk(annotation):
            if not (isinstance(node, ast.Constant) and isinstance(node.value, str)):
                continue
            try:
                parsed = ast.parse(node.value, mode="eval")
            except SyntaxError:
                continue
            for sub in ast.walk(parsed):
                if isinstance(sub, ast.Name):
                    used.add(sub.id)

    @staticmethod
    def _dunder_all(tree: ast.Module) -> Set[str]:
        exported: Set[str] = set()
        for node in tree.body:
            targets: List[ast.expr] = []
            if isinstance(node, ast.Assign):
                targets = node.targets
                value = node.value
            elif isinstance(node, ast.AugAssign):
                targets = [node.target]
                value = node.value
            else:
                continue
            if not any(isinstance(t, ast.Name) and t.id == "__all__" for t in targets):
                continue
            for sub in ast.walk(value):
                if isinstance(sub, ast.Constant) and isinstance(sub.value, str):
                    exported.add(sub.value)
        return exported
