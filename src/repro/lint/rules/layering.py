"""L001: the four-bit contract, statically.

The paper's architecture stacks ``phy < link < core (estimator, layer 2.5)
< net`` and couples them through *narrow interfaces*: the white bit, ack
bit, pin bit, and compare bit, all declared in
:mod:`repro.core.interfaces`.  This rule turns that into an import-graph
invariant for modules inside the four layer packages:

* imports within one layer are free;
* a handful of **shared modules** are importable from any layer: the
  interface contract itself, the wire-format frame definitions, and the
  simulation infrastructure (engine, packets, rng) which is plumbing, not
  a protocol layer;
* each layer may additionally import the **entry point** of the layer
  directly below it (link drives ``phy.radio``; the estimator sits on
  ``link.mac``) — that is the datapath, not estimation state;
* everything else is a layering violation: ``net`` reaching into
  ``phy`` internals, ``net`` importing a concrete estimator instead of
  the :class:`~repro.core.interfaces.LinkEstimator` contract, upward
  imports, etc.

Composition roots (``repro.sim.network``/``node``), experiments, and the
observability stack are outside the four layers and exempt — something has
to wire the stack together.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Optional, Set, Tuple

from repro.lint.core import Finding, ModuleInfo, Rule

#: Bottom-up order of the checked layers.
LAYER_ORDER = ("phy", "link", "core", "net")

_LAYER_OF_PACKAGE = {f"repro.{layer}": layer for layer in LAYER_ORDER}

#: Modules importable from any layer: the four-bit contract, the shared
#: wire formats, and simulation plumbing.
SHARED_MODULES = {
    "repro.core.interfaces",
    "repro.link.frame",
    "repro.sim.engine",
    "repro.sim.packets",
    "repro.sim.rng",
}

#: Per-layer datapath entry point, importable from the layer directly above.
ENTRY_POINTS: Dict[str, Set[str]] = {
    "phy": {"repro.phy.radio"},
    "link": {"repro.link.mac"},
    "core": set(),  # net programs against repro.core.interfaces only
    "net": set(),
}


def _layer_of(module: str) -> Optional[str]:
    parts = module.split(".")
    if len(parts) >= 2:
        return _LAYER_OF_PACKAGE.get(".".join(parts[:2]))
    return None


def _target_module(target: str) -> str:
    """Module part of an import target (strip a trailing symbol name).

    ``from repro.phy.radio import Radio`` targets ``repro.phy.radio.Radio``;
    the module is the longest prefix that is lowercase-ish.  We use the
    convention that symbols start with an uppercase letter or the import is
    a plain ``import x.y`` (already a module).
    """
    parts = target.split(".")
    # Layer packages only contain modules two+ levels deep; a final
    # CamelCase / UPPER component is a symbol imported from the module.
    if len(parts) >= 2 and parts[-1][:1].isupper():
        return ".".join(parts[:-1])
    return target


class LayeringRule(Rule):
    id = "L001"
    name = "layering"
    description = (
        "phy/link/core/net may only couple through core/interfaces.py, the "
        "shared frame formats, sim plumbing, and the layer below's entry point"
    )

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        src_layer = _layer_of(module.module)
        if src_layer is None:
            return
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    yield from self._check_edge(module, src_layer, (alias.name,), node)
            elif isinstance(node, ast.ImportFrom) and not node.level:
                base = node.module or ""
                if not base.startswith("repro."):
                    continue
                for alias in node.names:
                    # ``alias`` may be a symbol in ``base`` or a submodule of
                    # it; either the importing of the symbol's module or the
                    # submodule itself must be sanctioned.
                    yield from self._check_edge(module, src_layer, (base, f"{base}.{alias.name}"), node)

    def _check_edge(
        self, module: ModuleInfo, src_layer: str, candidates: Tuple[str, ...], node: ast.AST
    ) -> Iterator[Finding]:
        target_mod = _target_module(candidates[-1])
        dst_layer = _layer_of(target_mod)
        if dst_layer is None or dst_layer == src_layer:
            return
        if any(c in SHARED_MODULES for c in (*candidates, target_mod)):
            return
        src_idx = LAYER_ORDER.index(src_layer)
        dst_idx = LAYER_ORDER.index(dst_layer)
        allowed_below = ENTRY_POINTS[dst_layer]
        if dst_idx == src_idx - 1 and any(
            c in allowed_below for c in (*candidates, target_mod)
        ):
            return
        if dst_idx > src_idx:
            how = f"imports upward into `{target_mod}`"
        elif dst_idx == src_idx - 1:
            how = (
                f"imports `{target_mod}` — only the `{dst_layer}` entry "
                f"point(s) {sorted(ENTRY_POINTS[dst_layer]) or '[none]'} may "
                "cross this boundary"
            )
        else:
            how = f"skips layers: imports `{target_mod}` ({dst_layer}) from {src_layer}"
        yield self.finding(
            module,
            node,
            f"layer `{src_layer}` {how}; cross layers through "
            "repro.core.interfaces (the four-bit contract)",
        )
