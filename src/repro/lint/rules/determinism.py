"""D001: the simulation must be a pure function of the master seed.

Inside the deterministic packages (the simulated stack plus everything
that feeds event ordering) the rule flags:

* calls through the process-global ``random`` module (``random.random()``,
  ``random.shuffle()``, ...) — every draw must come from a named
  ``random.Random`` stream handed down from
  :class:`repro.sim.rng.RngManager`.  Constructing ``random.Random(seed)``
  is the sanctioned exception; ``random.SystemRandom`` is not.
* ``from random import <global function>`` — same hazard, different
  spelling.
* calls through numpy's process-global RNG (``np.random.seed()``,
  ``np.random.normal()``, ...) and unseeded ``default_rng()`` — vectorized
  draws must come from an explicitly seeded ``Generator(PCG64(...))``
  keyed off ``derive_seed`` (what the fast medium backend does).
* wall-clock and entropy reads: ``time.time()`` and friends,
  ``datetime.now()`` / ``today()`` / ``utcnow()``, ``os.urandom``,
  ``uuid.uuid1``/``uuid4``, anything from ``secrets``.
* iterating a ``set`` / ``frozenset`` directly in a ``for`` loop or
  comprehension — hash-order iteration feeding event ordering is exactly
  the nondeterminism PYTHONHASHSEED exists to expose.  Wrap in
  ``sorted(...)`` instead.

:mod:`repro.sim.rng` itself is exempt (it is the sanctioned wrapper), and
harness packages that legitimately measure wall-clock time (``repro.bench``,
``repro.obs``, ``repro.runner``, ``repro.experiments``, ``repro.analysis``,
``repro.lint``) are out of scope.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.core import Finding, ModuleInfo, Rule, qualified_name

#: Modules whose behavior must be seed-deterministic.
DETERMINISTIC_PACKAGES = (
    "repro.core",
    "repro.sim",
    "repro.phy",
    "repro.link",
    "repro.net",
    "repro.workloads",
    "repro.estimators",
    "repro.topology",
    "repro.metrics",
    "repro.faults",
    # The campaign's deterministic core: specs, enumeration and the
    # optimizer must be pure functions of (spec, seed) for resume to
    # replay identically.  Orchestration (queue/cli) lives in wall time
    # and stays out of scope.
    "repro.campaign.spec",
    "repro.campaign.sweep",
    "repro.campaign.optimize",
)

#: Wall-clock-measuring harness code, exempt by design.
EXEMPT_MODULES = ("repro.sim.rng",)

#: ``random.Random`` (a freshly seeded instance) is the one sanctioned
#: attribute; everything else on the module touches global state.
ALLOWED_RANDOM_ATTRS = {"Random"}

#: Explicitly-seeded numpy RNG machinery is sanctioned (the fast medium
#: backend seeds ``Generator(PCG64(derive_seed(...)))`` from the master
#: seed); the legacy ``np.random.*`` convenience functions all mutate the
#: process-global ``RandomState`` and are not.
ALLOWED_NUMPY_RANDOM_ATTRS = {
    "Generator",
    "BitGenerator",
    "SeedSequence",
    "PCG64",
    "PCG64DXSM",
    "Philox",
    "SFC64",
    "MT19937",
    "default_rng",
}

#: Spellings of the ``numpy.random`` namespace seen in qualified calls.
_NUMPY_RANDOM_PREFIXES = ("numpy.random.", "np.random.")

#: Qualified call targets that read the wall clock or OS entropy.
FORBIDDEN_CALLS = {
    "time.time": "reads the wall clock",
    "time.time_ns": "reads the wall clock",
    "time.monotonic": "reads the wall clock",
    "time.monotonic_ns": "reads the wall clock",
    "time.perf_counter": "reads the wall clock",
    "time.perf_counter_ns": "reads the wall clock",
    "datetime.datetime.now": "reads the wall clock",
    "datetime.datetime.utcnow": "reads the wall clock",
    "datetime.datetime.today": "reads the wall clock",
    "datetime.date.today": "reads the wall clock",
    "datetime.now": "reads the wall clock",
    "datetime.utcnow": "reads the wall clock",
    "datetime.today": "reads the wall clock",
    "date.today": "reads the wall clock",
    "os.urandom": "draws OS entropy",
    "uuid.uuid1": "draws OS entropy",
    "uuid.uuid4": "draws OS entropy",
}


def _set_valued(node: ast.expr) -> bool:
    """Is ``node`` literally a set (display, or set()/frozenset() call)?"""
    if isinstance(node, ast.Set):
        return True
    if isinstance(node, ast.SetComp):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in ("set", "frozenset")
    return False


class DeterminismRule(Rule):
    id = "D001"
    name = "determinism"
    description = (
        "no global random.* calls, wall-clock reads, OS entropy, or "
        "set-order iteration inside the deterministic simulation packages"
    )

    def _in_scope(self, module: ModuleInfo) -> bool:
        if module.module in EXEMPT_MODULES:
            return False
        if module.module.startswith("repro."):
            return module.in_packages(DETERMINISTIC_PACKAGES)
        # Standalone files (fixtures, scripts) get the full policy.
        return True

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        if not self._in_scope(module):
            return
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                yield from self._check_call(module, node)
            elif isinstance(node, ast.ImportFrom):
                yield from self._check_import_from(module, node)
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                yield from self._check_iteration(module, node.iter)
            elif isinstance(node, ast.comprehension):
                yield from self._check_iteration(module, node.iter)

    def _check_call(self, module: ModuleInfo, node: ast.Call) -> Iterator[Finding]:
        qual = qualified_name(node.func)
        if qual is None:
            return
        if qual.startswith("random.") and qual.count(".") == 1:
            attr = qual.split(".", 1)[1]
            if attr not in ALLOWED_RANDOM_ATTRS:
                yield self.finding(
                    module,
                    node,
                    f"call to global `random.{attr}()` — draw from a named "
                    "RngManager stream (sim/rng.py) instead",
                )
            return
        for prefix in _NUMPY_RANDOM_PREFIXES:
            if qual.startswith(prefix):
                attr = qual[len(prefix):]
                if attr == "default_rng" and not node.args:
                    yield self.finding(
                        module,
                        node,
                        "`default_rng()` without a seed draws OS entropy — "
                        "seed it from a derive_seed(master, ...) stream name",
                    )
                elif attr not in ALLOWED_NUMPY_RANDOM_ATTRS:
                    yield self.finding(
                        module,
                        node,
                        f"call to global numpy RNG `{prefix}{attr}()` — use a "
                        "seeded Generator(PCG64(derive_seed(...))) instead",
                    )
                return
        reason = FORBIDDEN_CALLS.get(qual)
        if reason is not None:
            yield self.finding(
                module,
                node,
                f"`{qual}()` {reason} — simulation state must be a pure "
                "function of the master seed",
            )

    def _check_import_from(self, module: ModuleInfo, node: ast.ImportFrom) -> Iterator[Finding]:
        if node.level:
            return
        if node.module == "random":
            for alias in node.names:
                if alias.name not in ALLOWED_RANDOM_ATTRS:
                    yield self.finding(
                        module,
                        node,
                        f"`from random import {alias.name}` binds a global-state "
                        "RNG function — import Random and seed a stream instead",
                    )
        elif node.module == "numpy.random":
            for alias in node.names:
                if alias.name not in ALLOWED_NUMPY_RANDOM_ATTRS:
                    yield self.finding(
                        module,
                        node,
                        f"`from numpy.random import {alias.name}` binds the "
                        "global RandomState — import Generator/PCG64 and seed "
                        "from derive_seed instead",
                    )

    def _check_iteration(self, module: ModuleInfo, iter_node: ast.expr) -> Iterator[Finding]:
        if _set_valued(iter_node):
            yield self.finding(
                module,
                iter_node,
                "iteration over a set literal/constructor — hash order is "
                "not deterministic across runs; wrap in sorted(...)",
            )
