"""P001: the fast medium stays behaviorally paired with the exact one.

The ≥49× city-scale speedup (DESIGN.md §9, §11) is only trustworthy while
:class:`~repro.sim.medium_fast.FastRadioMedium` keeps consuming the same
contract surface as :class:`~repro.sim.medium.RadioMedium`.  Two kinds of
silent divergence have nearly identical symptoms (distribution tests keep
passing while one scenario class quietly differs), so both are checked
statically:

* **Method parity** — every *public* method on the exact backend must be
  overridden by the fast backend, unless listed in
  :data:`PARITY_INHERITED` with a reason.  A new public method added to
  the exact backend (say, a duty-cycle hook) that the fast backend forgets
  to mirror would otherwise fall back to O(N·k) semantics — correct but
  invalidating every published speedup ratio — or, worse, operate on the
  exact backend's structures that the fast backend does not maintain.
* **Surface parity** — every collaborator attribute the exact backend
  reads (``self.channel.*``, ``*.radio.*``, ``self.white_bit_policy.*``,
  ``self.lqi_model.*``, any ``config``/``cfg`` field) must also be
  referenced by the fast backend, through either its own overrides or the
  base methods it inherits.  A new channel parameter consumed only by the
  exact path means fast runs silently ignore a knob the config digest
  claims they honor.  Intentional reimplementation goes in
  :data:`PARITY_DIVERGENT_SURFACE` with a reason.

The allowlists are part of the contract: adding an entry is a reviewed
statement that the divergence is intentional.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Set

from repro.lint.core import Finding
from repro.lint.project import ProjectIndex, ProjectRule

BASE_CLASS = "repro.sim.medium.RadioMedium"
FAST_CLASS = "repro.sim.medium_fast.FastRadioMedium"

#: Public base methods the fast backend intentionally inherits: these
#: operate purely on state the base class owns on both backends.
PARITY_INHERITED: Dict[str, str] = {
    "enable_faults": "fault overlay state (MediumFaultState) is backend-independent",
    "is_transmitting": "half-duplex check reads the shared _tx_by_sender bookkeeping",
    "start_transmission": "admission/airtime accounting is shared; only reception evaluation diverges",
}

#: Collaborator reads the fast backend intentionally replaces.
PARITY_DIVERGENT_SURFACE: Dict[str, str] = {
    "channel.gain_db": "instantaneous gain is reimplemented by the repro.phy.vector kernels",
}


def _class_surface(class_facts: Dict[str, object]) -> Dict[str, List[str]]:
    return dict(class_facts.get("surfaces", {}))  # type: ignore[arg-type]


def _methods(class_facts: Dict[str, object]) -> Dict[str, int]:
    return dict(class_facts.get("methods", {}))  # type: ignore[arg-type]


class BackendParityRule(ProjectRule):
    id = "P001"
    name = "backend-parity"
    description = (
        "FastRadioMedium overrides every public RadioMedium method and "
        "references every collaborator attribute the exact backend reads "
        "(explicit allowlists for intentional divergence)"
    )

    def check_project(self, index: ProjectIndex) -> Iterator[Finding]:
        base = index.find_class(BASE_CLASS)
        fast = index.find_class(FAST_CLASS)
        if base is None or fast is None:
            return  # partial tree under lint; nothing to pair
        base_facts, base_cls = base
        fast_facts, fast_cls = fast
        base_methods = _methods(base_cls)
        fast_methods = _methods(fast_cls)
        fast_line = int(fast_cls["line"])  # type: ignore[arg-type]

        # -- method parity ------------------------------------------------
        for method in sorted(base_methods):
            if method.startswith("_"):
                continue
            if method in fast_methods:
                continue
            if method in PARITY_INHERITED:
                continue
            yield self.project_finding(
                fast_facts.path,
                fast_line,
                f"public method `{method}()` on RadioMedium is not "
                "overridden by FastRadioMedium — the fast backend would run "
                "the exact backend's structural semantics; override it or "
                "allowlist it in PARITY_INHERITED with a reason",
            )

        # Stale allowlist entries are findings too: an allowlisted method
        # that *is* now overridden (or gone) means the contract note lies.
        for method in sorted(PARITY_INHERITED):
            if method in fast_methods:
                yield self.project_finding(
                    fast_facts.path,
                    int(fast_methods[method]),
                    f"`{method}()` is allowlisted as intentionally inherited "
                    "but FastRadioMedium overrides it — drop the stale "
                    "PARITY_INHERITED entry",
                )
            elif method not in base_methods:
                yield self.project_finding(
                    base_facts.path,
                    int(base_cls["line"]),  # type: ignore[arg-type]
                    f"PARITY_INHERITED lists `{method}()` but RadioMedium "
                    "has no such method — drop the stale entry",
                )

        # -- surface parity -----------------------------------------------
        base_surfaces = _class_surface(base_cls)
        fast_surfaces = _class_surface(fast_cls)
        base_total: Set[str] = set()
        for chains in base_surfaces.values():
            base_total.update(chains)
        fast_total: Set[str] = set()
        for chains in fast_surfaces.values():
            fast_total.update(chains)
        # Methods the fast backend inherits execute base code: their reads
        # are part of the fast backend's consumed surface.
        for method, chains in base_surfaces.items():
            if method not in fast_methods:
                fast_total.update(chains)

        for chain in sorted(base_total - fast_total):
            if chain in PARITY_DIVERGENT_SURFACE:
                continue
            # A longer fast-side chain through the same attribute still
            # counts as referencing it (channel.cfg vs channel.cfg.x).
            if any(f == chain or f.startswith(chain + ".") for f in fast_total):
                continue
            yield self.project_finding(
                fast_facts.path,
                fast_line,
                f"exact backend reads `{chain}` but the fast backend never "
                "references it — a config knob the fast path silently "
                "ignores; consume it or allowlist it in "
                "PARITY_DIVERGENT_SURFACE with a reason",
            )

        for chain in sorted(PARITY_DIVERGENT_SURFACE):
            if chain not in base_total:
                yield self.project_finding(
                    base_facts.path,
                    int(base_cls["line"]),  # type: ignore[arg-type]
                    f"PARITY_DIVERGENT_SURFACE lists `{chain}` but the exact "
                    "backend no longer reads it — drop the stale entry",
                )
