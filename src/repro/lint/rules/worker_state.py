"""W001: no runtime-mutated module globals on runner worker code paths.

``repro.runner`` executes tasks two ways: in pool workers (fresh
processes — module state is reborn per worker) and, with ``workers <= 1``,
*serially in the parent process*.  The two must be equivalent (a pinned
test asserts it), so any module-level container that code mutates at
runtime is a hazard: in serial mode it carries state from run N into run
N+1, and the leak only shows up as a serial-vs-parallel digest mismatch
long after the offending line landed.

The rule combines three whole-program facts no single file shows:

* the inventory of module-level mutable containers (lists/dicts/sets and
  their constructor spellings) in every ``repro.*`` module,
* the transitive import closure of the runner worker entry points
  (:data:`WORKER_ENTRY_PREFIXES`) — only state *reachable from worker
  code* is in scope, and
* every mutation site in the project (``x.append(...)``, ``x[k] = v``,
  ``mod.GLOBAL.update(...)``, ...), including cross-module mutations
  through import bindings, classified by whether it executes at import
  time (module level — one-time initialization, fine) or inside a
  function body (runtime — flagged).

Intentional exceptions (bounded memo caches whose entries are pure
functions of their key, import-time decorator registries) are suppressed
inline at the assignment with a justifying comment — the suppression is
the reviewed statement that the state cannot change results across runs.
"""

from __future__ import annotations

from typing import Iterator

from repro.lint.core import Finding
from repro.lint.project import ProjectIndex, ProjectRule

#: Modules whose import closure constitutes "worker code": the runner
#: itself, the experiment entry functions it submits, the bench scenarios
#: (submitted the same way), and the network builder every task calls.
WORKER_ENTRY_PREFIXES = (
    "repro.runner",
    "repro.experiments",
    "repro.bench.scenarios",
    "repro.sim.network",
    # Campaign points execute via simulate() inside pool workers.
    "repro.campaign",
)

#: Module-level names that are conventionally not state.
IGNORED_NAMES = {"__all__"}


class WorkerStateRule(ProjectRule):
    id = "W001"
    name = "worker-state"
    description = (
        "module-level mutable containers reachable from runner worker code "
        "must not be mutated at runtime (serial in-process runs leak them "
        "across runs)"
    )

    def check_project(self, index: ProjectIndex) -> Iterator[Finding]:
        entries = [
            module
            for module in index.files
            if any(
                module == p or module.startswith(p + ".")
                for p in WORKER_ENTRY_PREFIXES
            )
        ]
        reachable = index.reachable_from(sorted(entries))
        for module in sorted(reachable):
            if not module.startswith("repro."):
                continue
            facts = index.files[module]
            for glob in facts.mutable_globals:
                name = str(glob["name"])
                if name in IGNORED_NAMES:
                    continue
                sites = index.runtime_mutations.get((module, name), [])
                if not sites:
                    continue
                mutators = sorted({str(s["in_module"]) for s in sites})
                ops = sorted({str(s["op"]) for s in sites})
                yield self.project_finding(
                    facts.path,
                    int(glob["line"]),  # type: ignore[arg-type]
                    f"module-level {glob['kind']} `{name}` is mutated at "
                    f"runtime ({'/'.join(ops)} from {', '.join(mutators)}) "
                    "and is reachable from runner worker code — state leaks "
                    "across runs in serial in-process mode; scope it to the "
                    "run (or suppress inline with the reason it cannot "
                    "change results)",
                )
