"""Lint engine: module loading, rule protocol, findings, suppressions.

A :class:`Rule` is a small object with an ``id`` (``D001``), a ``name``
(``determinism``), and a ``check(module)`` method yielding
:class:`Finding` objects.  The engine parses each file once into a
:class:`ModuleInfo` (AST + dotted module name + source lines) and hands it
to every enabled rule, then drops findings suppressed by an inline
``# lint: disable=<rule-name>`` comment on the offending line.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

#: Inline suppression: ``# lint: disable`` (all rules) or
#: ``# lint: disable=determinism,unused-import`` on the flagged line.
_DISABLE_RE = re.compile(r"#\s*lint:\s*disable(?:=(?P<rules>[\w\-, ]+))?")


@dataclass(frozen=True)
class Finding:
    """One rule violation at a source location."""

    rule: str  #: rule id, e.g. ``D001``
    name: str  #: rule name, e.g. ``determinism``
    path: str  #: repo-relative posix path
    line: int
    col: int
    message: str

    @property
    def fingerprint(self) -> str:
        """Location-independent identity used for baseline matching.

        Deliberately excludes the line/column so that unrelated edits moving
        a baselined finding up or down the file do not un-baseline it.
        """
        return f"{self.rule}::{self.path}::{self.message}"

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} [{self.name}] {self.message}"

    def to_json(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "name": self.name,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "fingerprint": self.fingerprint,
        }


@dataclass
class ModuleInfo:
    """A parsed source file plus everything rules need to judge it."""

    path: str  #: repo-relative posix path (stable across machines)
    module: str  #: dotted module name, e.g. ``repro.net.ctp.routing``
    tree: ast.Module
    source_lines: List[str] = field(default_factory=list)

    @property
    def package(self) -> str:
        """The top two dotted components (``repro.net``), or the module."""
        parts = self.module.split(".")
        return ".".join(parts[:2]) if len(parts) > 1 else self.module

    def in_packages(self, packages: Iterable[str]) -> bool:
        """Is this module inside any of the given dotted packages?"""
        for pkg in packages:
            if self.module == pkg or self.module.startswith(pkg + "."):
                return True
        return False


class Rule:
    """Base class: subclasses set ``id``/``name``/``description`` and
    implement :meth:`check`."""

    id: str = ""
    name: str = ""
    description: str = ""

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(self, module: ModuleInfo, node: ast.AST, message: str) -> Finding:
        return Finding(
            rule=self.id,
            name=self.name,
            path=module.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            message=message,
        )


def module_name_for(path: Path, root: Optional[Path] = None) -> str:
    """Derive the dotted module name for ``path``.

    Uses the last ``repro`` component in the path so both installed sources
    (``src/repro/...``) and test fixtures staged under a ``repro/`` directory
    resolve to package-qualified names; anything else falls back to the bare
    file stem (rules then apply their least package-specific policy).
    """
    parts = list(path.with_suffix("").parts)
    for i in range(len(parts) - 1, -1, -1):
        if parts[i] == "repro":
            dotted = parts[i:]
            if dotted[-1] == "__init__":
                dotted = dotted[:-1]
            return ".".join(dotted)
    return path.stem


def load_module(path: Path, repo_root: Optional[Path] = None) -> ModuleInfo:
    """Parse one file into a :class:`ModuleInfo`.

    Raises ``SyntaxError`` for unparsable sources — the CLI reports those
    as hard errors rather than findings.
    """
    source = path.read_text(encoding="utf-8")
    tree = ast.parse(source, filename=str(path))
    if repo_root is not None:
        try:
            rel = path.resolve().relative_to(repo_root.resolve())
        except ValueError:
            rel = path
    else:
        rel = path
    return ModuleInfo(
        path=rel.as_posix(),
        module=module_name_for(path),
        tree=tree,
        source_lines=source.splitlines(),
    )


def suppressed_rules(module: ModuleInfo, line: int) -> Optional[Set[str]]:
    """Rule names disabled on ``line``; empty set means *all* rules."""
    if not 1 <= line <= len(module.source_lines):
        return None
    m = _DISABLE_RE.search(module.source_lines[line - 1])
    if m is None:
        return None
    spec = m.group("rules")
    if spec is None:
        return set()
    return {part.strip() for part in spec.split(",") if part.strip()}


def iter_python_files(paths: Sequence[Path]) -> Iterator[Path]:
    """Expand files/directories into a sorted, de-duplicated .py file list."""
    seen = set()
    out: List[Path] = []
    for p in paths:
        if p.is_dir():
            candidates: Iterable[Path] = sorted(p.rglob("*.py"))
        else:
            candidates = [p]
        for c in candidates:
            if "__pycache__" in c.parts:
                continue
            key = c.resolve()
            if key not in seen:
                seen.add(key)
                out.append(c)
    return iter(out)


@dataclass
class LintContext:
    """The result of one lint run."""

    findings: List[Finding] = field(default_factory=list)
    inline_suppressed: int = 0
    checked_files: int = 0
    errors: List[str] = field(default_factory=list)  #: unparsable files
    #: Facts-cache accounting for the project pass (0/0 when it did not run).
    index_cache_hits: int = 0
    index_cache_misses: int = 0


def lint_paths(
    paths: Sequence[Path],
    rules: Sequence[Rule],
    repo_root: Optional[Path] = None,
    index_cache: Optional[Path] = None,
) -> LintContext:
    """Run ``rules`` over every Python file under ``paths``.

    File rules run per module; project rules (subclasses of
    :class:`repro.lint.project.ProjectRule`) run once afterwards against a
    whole-program index built from the same parsed modules.  When
    ``index_cache`` names a file, per-module facts are reused from it
    keyed on content digest (see :class:`repro.lint.project.IndexCache`).
    """
    # Local import: project.py imports this module for the rule protocol.
    from repro.lint.project import IndexCache, ProjectIndex, ProjectRule

    file_rules = [r for r in rules if not isinstance(r, ProjectRule)]
    project_rules = [r for r in rules if isinstance(r, ProjectRule)]

    ctx = LintContext()
    modules: List[ModuleInfo] = []
    by_path: Dict[str, ModuleInfo] = {}
    for path in iter_python_files(paths):
        try:
            module = load_module(path, repo_root)
        except (SyntaxError, UnicodeDecodeError) as exc:
            ctx.errors.append(f"{path}: {exc}")
            continue
        ctx.checked_files += 1
        if project_rules:
            modules.append(module)
            by_path[module.path] = module
        for rule in file_rules:
            for finding in rule.check(module):
                disabled = suppressed_rules(module, finding.line)
                if disabled is not None and (not disabled or rule.name in disabled or rule.id in disabled):
                    ctx.inline_suppressed += 1
                    continue
                ctx.findings.append(finding)

    if project_rules and not ctx.errors:
        cache = IndexCache(index_cache)
        facts = [cache.facts_for(m) for m in modules]
        cache.save()
        ctx.index_cache_hits = cache.stats.hits
        ctx.index_cache_misses = cache.stats.misses
        index = ProjectIndex.build(facts, repo_root)
        for rule in project_rules:
            for finding in rule.check_project(index):
                module_info = by_path.get(finding.path)
                if module_info is not None:
                    disabled = suppressed_rules(module_info, finding.line)
                    if disabled is not None and (
                        not disabled or rule.name in disabled or rule.id in disabled
                    ):
                        ctx.inline_suppressed += 1
                        continue
                ctx.findings.append(finding)

    ctx.findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return ctx


def find_repo_root(start: Path) -> Optional[Path]:
    """Walk up from ``start`` to the nearest directory with pyproject.toml."""
    cur = start.resolve()
    for candidate in (cur, *cur.parents):
        if (candidate / "pyproject.toml").is_file():
            return candidate
    return None


def qualified_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def imported_names(tree: ast.Module) -> List[Tuple[str, str, ast.AST]]:
    """Every import binding in the module as ``(bound_name, target, node)``.

    ``target`` is the fully-qualified imported thing: ``repro.phy.radio``
    for ``import repro.phy.radio``; ``repro.phy.radio.Radio`` for
    ``from repro.phy.radio import Radio``.
    """
    out: List[Tuple[str, str, ast.AST]] = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                bound = alias.asname or alias.name.split(".")[0]
                out.append((bound, alias.name, node))
        elif isinstance(node, ast.ImportFrom):
            if node.level:  # relative import — not used in this repo
                base = "." * node.level + (node.module or "")
            else:
                base = node.module or ""
            for alias in node.names:
                bound = alias.asname or alias.name
                target = f"{base}.{alias.name}" if base else alias.name
                out.append((bound, target, node))
    return out
