#!/usr/bin/env python3
"""Survey the link-quality landscape of a simulated testbed.

The opening of the paper lists the channel phenomena that make link
estimation hard: intermediate-quality links, time variation, asymmetry,
hardware variation.  This tool measures all of them on a testbed profile
by broadcasting probes from every node and counting receptions — the
methodology of the measurement studies the paper cites ([19], [23], [24]).

Usage:
    python examples/link_survey.py [--profile mirage|tutornet] [--probes 100]
"""

import argparse
import math
from collections import Counter

from repro.analysis import boxplot, table
from repro.link.frame import BROADCAST, Frame
from repro.link.mac import Mac
from repro.phy.noise import apply_hardware_variation
from repro.phy.radio import Radio
from repro.phy.channel import ChannelModel
from repro.sim.engine import Engine
from repro.sim.medium import RadioMedium
from repro.sim.rng import RngManager
from repro.topology.testbeds import PROFILES


class ProbeCounter:
    """Counts probe receptions per directed link."""

    def __init__(self, node_id: int, radio: Radio):
        self.node_id = node_id
        self.radio = radio
        self.heard = Counter()

    def on_frame_received(self, frame, info):
        self.heard[frame.src] += 1


def survey(profile_name: str, probes: int, seed: int):
    profile = PROFILES[profile_name]
    topo = profile.topology(seed)
    engine = Engine()
    rng = RngManager(seed)
    channel = ChannelModel(
        topo.positions,
        rng.fork("channel"),
        pathloss=profile.pathloss,
        shadowing_sigma_db=profile.shadowing_sigma_db,
        temporal_sigma_db=profile.temporal_sigma_db,
        temporal_tau_s=profile.temporal_tau_s,
        bimodal_fraction=profile.bimodal_fraction,
    )
    medium = RadioMedium(engine, channel, rng)
    nodes = {}
    for nid in topo.node_ids():
        node = ProbeCounter(nid, Radio(node_id=nid, tx_power_dbm=0.0))
        medium.attach(node)
        nodes[nid] = node
    apply_hardware_variation(
        [n.radio for n in nodes.values()],
        rng.stream("hw"),
        tx_power_sigma_db=profile.tx_power_sigma_db,
        noise_floor_sigma_db=profile.noise_floor_sigma_db,
    )
    medium.finalize()

    # Round-robin probes with spacing so probes never collide.
    t = 0.0
    for round_no in range(probes):
        for nid in topo.node_ids():
            engine.schedule_at(
                t, medium.start_transmission, nid, Frame(src=nid, dst=BROADCAST, length_bytes=30)
            )
            t += 0.01
        t += 0.5
    engine.run()

    prr = {}
    for rx_id, node in nodes.items():
        for tx_id, count in node.heard.items():
            prr[(tx_id, rx_id)] = count / probes
    return topo, prr


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--profile", choices=("mirage", "tutornet"), default="mirage")
    parser.add_argument("--probes", type=int, default=100)
    parser.add_argument("--seed", type=int, default=11)
    args = parser.parse_args()

    topo, prr = survey(args.profile, args.probes, args.seed)

    links = [(pair, value) for pair, value in prr.items() if value > 0.01]
    good = sum(1 for _, v in links if v >= 0.9)
    inter = sum(1 for _, v in links if 0.1 <= v < 0.9)
    poor = sum(1 for _, v in links if v < 0.1)
    print(
        table(
            ["class", "links", "share"],
            [
                ["good (PRR >= 0.9)", good, f"{good / len(links) * 100:.0f}%"],
                ["intermediate (0.1-0.9)", inter, f"{inter / len(links) * 100:.0f}%"],
                ["poor (< 0.1)", poor, f"{poor / len(links) * 100:.0f}%"],
            ],
            title=f"link classes on {args.profile} ({len(links)} audible directed links)",
        )
    )
    print()

    # PRR by distance bands.
    bands = {}
    for (a, b), value in links:
        d = topo.distance(a, b)
        bands.setdefault(f"{int(d // 5) * 5:>2}-{int(d // 5) * 5 + 5} m", []).append(value)
    ordered = dict(sorted(bands.items(), key=lambda kv: kv[0]))
    print(boxplot(ordered, lo=0.0, hi=1.0, title="PRR by distance band", fmt="{:.2f}"))
    print()

    # Asymmetry: |PRR(a→b) − PRR(b→a)| over bidirectionally audible pairs.
    deltas = []
    for (a, b), v in links:
        rev = prr.get((b, a))
        if rev is not None and a < b:
            deltas.append(abs(v - rev))
    asym = sum(1 for d in deltas if d > 0.25)
    print(
        f"asymmetric pairs (|ΔPRR| > 0.25): {asym}/{len(deltas)} "
        f"({asym / len(deltas) * 100:.0f}%) — hardware variation at work"
    )


if __name__ == "__main__":
    main()
