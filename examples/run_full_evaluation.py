#!/usr/bin/env python3
"""Regenerate the paper's entire evaluation in one command.

Runs every figure experiment at the chosen scale and writes one text file
per figure under ``results/`` (plus a summary to stdout).  This is the
script whose output backs EXPERIMENTS.md.

Usage:
    python examples/run_full_evaluation.py --out results [--quick]
    python examples/run_full_evaluation.py --minutes 20 --seeds 1
"""

import argparse
import dataclasses
import time
import traceback
from pathlib import Path

from repro.experiments import BENCH_SCALE, FULL_SCALE
from repro.experiments import (
    ablation,
    fig2_trees,
    fig3_lqi_blind,
    fig6_design_space,
    fig7_power_sweep,
    fig8_delivery,
    headline,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="results", help="output directory")
    parser.add_argument("--quick", action="store_true", help="benchmark scale (~2 min)")
    parser.add_argument("--minutes", type=float, default=None, help="override run length")
    parser.add_argument("--seeds", type=int, default=None, help="number of seeds")
    args = parser.parse_args()

    scale = BENCH_SCALE if args.quick else FULL_SCALE
    if args.minutes is not None:
        scale = dataclasses.replace(
            scale, duration_s=args.minutes * 60.0, warmup_s=min(300.0, args.minutes * 12.0)
        )
    if args.seeds is not None:
        scale = dataclasses.replace(scale, seeds=tuple(range(1, args.seeds + 1)))

    out = Path(args.out)
    out.mkdir(parents=True, exist_ok=True)

    powers = (0.0, -10.0) if args.quick else (0.0, -10.0, -20.0)
    sweep_holder = {}

    def fig7():
        sweep_holder["sweep"] = fig7_power_sweep.run(scale, powers=powers)
        return sweep_holder["sweep"]

    jobs = [
        ("fig3", lambda: fig3_lqi_blind.run()),
        ("fig2", lambda: fig2_trees.run(scale)),
        ("fig6", lambda: fig6_design_space.run(scale)),
        ("fig7", fig7),
        ("fig8", lambda: fig8_delivery.run(scale, powers=powers, sweep=sweep_holder.get("sweep"))),
        ("headline", lambda: headline.run(scale)),
        ("ablation", lambda: ablation.run(scale)),
    ]
    for name, job in jobs:
        t0 = time.time()
        try:
            body = job().render()
        except Exception:
            body = traceback.format_exc()
        wall = time.time() - t0
        path = out / f"{name}.txt"
        path.write_text(body + f"\n\n[wall time: {wall:.0f}s]\n")
        print(f"{name:<10} {wall:6.0f}s  -> {path}")
    print("done.")


if __name__ == "__main__":
    main()
