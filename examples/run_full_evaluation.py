#!/usr/bin/env python3
"""Regenerate the paper's entire evaluation in one command.

Runs every figure experiment at the chosen scale and writes one text file
per figure under ``results/`` (plus a summary to stdout).  This is the
script whose output backs EXPERIMENTS.md.

All figures share one :class:`repro.runner.ExperimentRunner`, so
``--workers N`` fans the whole evaluation out over N processes and the
result cache makes re-runs (and the fig7/fig8 overlap) nearly free.

Usage:
    python examples/run_full_evaluation.py --out results [--quick]
    python examples/run_full_evaluation.py --minutes 20 --seeds 1
    python examples/run_full_evaluation.py --workers 4 --json
"""

import argparse
import dataclasses
import json
import time
import traceback
from pathlib import Path

from repro.experiments import BENCH_SCALE, FULL_SCALE
from repro.experiments import (
    ablation,
    fig2_trees,
    fig3_lqi_blind,
    fig6_design_space,
    fig7_power_sweep,
    fig8_delivery,
    headline,
)
from repro.runner import ExperimentRunner, ResultCache
from repro.metrics.collection_stats import json_sanitize


def _jsonify(value):
    """Best-effort strict-JSON view of a figure result (duck-typed).

    Recurses field-by-field rather than via ``dataclasses.asdict`` so dicts
    keyed by tuples (e.g. fig7's ``(protocol, power)``) become string keys.
    """
    if hasattr(value, "to_json_dict"):
        return value.to_json_dict()
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {f.name: _jsonify(getattr(value, f.name)) for f in dataclasses.fields(value)}
    if isinstance(value, dict):
        return {str(k): _jsonify(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonify(v) for v in value]
    return json_sanitize(value)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="results", help="output directory")
    parser.add_argument("--quick", action="store_true", help="benchmark scale (~2 min)")
    parser.add_argument("--minutes", type=float, default=None, help="override run length")
    parser.add_argument("--seeds", type=int, default=None, help="number of seeds")
    parser.add_argument("--workers", type=int, default=1, help="process count (1 = serial)")
    parser.add_argument("--no-cache", action="store_true", help="disable the result cache")
    parser.add_argument(
        "--cache-dir", default=None, help="result cache location (default: .repro-cache)"
    )
    parser.add_argument("--json", action="store_true", help="also write <figure>.json files")
    args = parser.parse_args()

    scale = BENCH_SCALE if args.quick else FULL_SCALE
    if args.minutes is not None:
        scale = dataclasses.replace(
            scale, duration_s=args.minutes * 60.0, warmup_s=min(300.0, args.minutes * 12.0)
        )
    if args.seeds is not None:
        scale = dataclasses.replace(scale, seeds=tuple(range(1, args.seeds + 1)))

    out = Path(args.out)
    out.mkdir(parents=True, exist_ok=True)

    runner = ExperimentRunner(
        workers=args.workers,
        cache=None if args.no_cache else ResultCache(args.cache_dir),
        progress=True,
    )

    powers = (0.0, -10.0) if args.quick else (0.0, -10.0, -20.0)
    sweep_holder = {}

    def fig7():
        sweep_holder["sweep"] = fig7_power_sweep.run(scale, powers=powers, runner=runner)
        return sweep_holder["sweep"]

    jobs = [
        ("fig3", lambda: fig3_lqi_blind.run(runner=runner)),
        ("fig2", lambda: fig2_trees.run(scale, runner=runner)),
        ("fig6", lambda: fig6_design_space.run(scale, runner=runner)),
        ("fig7", fig7),
        (
            "fig8",
            lambda: fig8_delivery.run(
                scale, powers=powers, sweep=sweep_holder.get("sweep"), runner=runner
            ),
        ),
        ("headline", lambda: headline.run(scale, runner=runner)),
        ("ablation", lambda: ablation.run(scale, runner=runner)),
    ]
    for name, job in jobs:
        t0 = time.time()
        result = None
        try:
            result = job()
            body = result.render()
        except Exception:
            body = traceback.format_exc()
        wall = time.time() - t0
        path = out / f"{name}.txt"
        path.write_text(body + f"\n\n[wall time: {wall:.0f}s]\n")
        print(f"{name:<10} {wall:6.0f}s  -> {path}")
        if args.json and result is not None:
            jpath = out / f"{name}.json"
            try:
                jpath.write_text(json.dumps(_jsonify(result), indent=2, allow_nan=False) + "\n")
            except Exception:
                print(f"{name}: JSON export failed\n{traceback.format_exc()}")
    print(runner.totals.summary())
    print("done.")


if __name__ == "__main__":
    main()
