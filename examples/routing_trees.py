#!/usr/bin/env python3
"""Figure 2 at full scale: routing trees of CTP, MultiHopLQI, and CTP with
an unrestricted link table on the 85-node Mirage-like testbed.

The paper reports costs of 3.14 / 2.28 / 1.86 transmissions per delivered
packet; the shape to look for here is the *ordering* and the depth gap
between constrained and unconstrained CTP.

Usage:
    python examples/routing_trees.py [--quick]
"""

import argparse

from repro.experiments.common import BENCH_SCALE, FULL_SCALE
from repro.experiments.fig2_trees import run


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="reduced scale (~30 s)")
    args = parser.parse_args()
    scale = BENCH_SCALE if args.quick else FULL_SCALE
    result = run(scale)
    print(result.render())
    print()
    print(f"cost ordering CTP >= MultiHopLQI >= CTP-unconstrained: {result.cost_ordering_holds()}")
    print(f"constrained table deepens the tree: {result.depth_gap_holds()}")


if __name__ == "__main__":
    main()
