#!/usr/bin/env python3
"""Quantify Section 2: what each estimator flavor can and cannot measure.

Scores three estimator configurations against ground truth on scripted
links: a steady lossy link (accuracy/bias) and a step change (agility).
Ground truth for acknowledged delivery on a symmetric link with PRR p is
ETX = 1/p² — which a beacon-only estimator structurally cannot see.

Usage:
    python examples/estimation_accuracy.py
"""

import dataclasses

from repro.analysis import table
from repro.estimators.accuracy import evaluate, step_scenario, steady_scenario, true_etx
from repro.estimators.presets import four_bit

CONFIGS = {
    "4B (hybrid)": four_bit(),
    "beacon-only (no ack bit)": dataclasses.replace(four_bit(), use_ack_stream=False),
    "sluggish (ku=25, a=0.9)": dataclasses.replace(four_bit(), ku=25, alpha_outer=0.9),
}


def main() -> None:
    steady = steady_scenario(0.7, duration_s=900.0, warmup_s=300.0, data_rate_pps=2.0,
                             beacon_period_s=5.0)
    step = step_scenario(high=0.9, low=0.3, at_s=300.0, duration_s=700.0, data_rate_pps=2.0,
                         beacon_period_s=5.0)

    rows = []
    for label, config in CONFIGS.items():
        acc = evaluate(config, steady, label=label)
        agility = evaluate(config, step, label=label)
        delay = agility.detection_delay_s
        rows.append(
            [
                label,
                f"{acc.mean_relative_error() * 100:.0f}%",
                f"{acc.availability() * 100:.0f}%",
                f"{delay:.0f}s" if delay is not None else "never",
            ]
        )
    print(
        table(
            ["estimator", "rel. error (steady p=0.7)", "availability", "step detection"],
            rows,
            title=f"estimator accuracy vs ground truth (truth on steady link: ETX = {true_etx(0.7):.2f})",
        )
    )
    print()
    print("The beacon-only estimator converges to 1/p — biased low against the")
    print("1/p² acknowledged-delivery truth — and detects the step only at")
    print("probe rate.  The ack bit fixes both, at zero protocol cost.")


if __name__ == "__main__":
    main()
