#!/usr/bin/env python3
"""Observe a run from the inside: structured event tracing.

Instruments every node of a small 4B network, runs five minutes of
collection, and prints parent changes, a transmission ledger for the
busiest node, a cross-layer metrics excerpt, and one node's estimator
table snapshot — the workflow for debugging a misbehaving deployment.
The full trace is exported to JSONL for the offline analysis CLI.

Usage:
    python examples/trace_debugging.py
    python -m repro.obs summary results/trace.jsonl      # afterwards
"""

from collections import Counter

from repro import CollectionNetwork, MIRAGE, SimConfig, scaled_profile
from repro.obs import network_metrics
from repro.sim.trace import instrument_network


def main() -> None:
    profile = scaled_profile(MIRAGE, 20)
    topology = profile.topology(seed=11)
    config = SimConfig(protocol="4b", seed=4, duration_s=300.0, warmup_s=100.0)
    network = CollectionNetwork(topology, config, profile=profile)
    tracer = instrument_network(network, etx_sample_s=60.0)
    result = network.run()

    print(result.summary_row())
    print()
    print("--- parent changes (route dynamics) ---")
    print(tracer.render(kind="parent-change", limit=30))
    print()

    by_node = Counter(r.node for r in tracer.filter(kind="tx"))
    busiest, tx_count = by_node.most_common(1)[0]
    unacked = sum(1 for r in tracer.filter(kind="tx", node=busiest) if r.get("ack") == 0)
    print(f"--- busiest transmitter: node {busiest} ({tx_count} unicasts, {unacked} unacked) ---")
    print(tracer.render(kind="tx", node=busiest, limit=10))
    print()

    print(f"--- estimator table of node {busiest} ---")
    for row in network.nodes[busiest].estimator.table_snapshot():
        prr_in = f"{row['prr_in']:.2f}" if row["prr_in"] is not None else "  — "
        etx = f"{row['etx']:.2f}" if row["mature"] else " inf"
        pin = "PIN" if row["pinned"] else "   "
        print(f"  nbr {row['addr']:>3}  {pin}  etx={etx}  prr_in={prr_in}")
    print()

    # Every layer's counters, folded into one network-wide registry.
    registry = network_metrics(network, per_node=False)
    print("--- cross-layer metrics (estimator excerpt) ---")
    print(registry.render(prefix="est.estimator"))
    print()

    path = "results/trace.jsonl"
    count = tracer.to_jsonl(path)
    print(f"wrote {count} records to {path} — analyze offline with:")
    print(f"  python -m repro.obs summary {path}")
    print(f"  python -m repro.obs flaps {path}")
    print(f"  python -m repro.obs convergence {path} --node {busiest}")


if __name__ == "__main__":
    main()
