#!/usr/bin/env python3
"""Observe a run from the inside: structured event tracing.

Instruments every node of a small 4B network, runs five minutes of
collection, and prints parent changes, a transmission ledger for the
busiest node, and one node's estimator table snapshot — the workflow for
debugging a misbehaving deployment.

Usage:
    python examples/trace_debugging.py
"""

from collections import Counter

from repro import CollectionNetwork, MIRAGE, SimConfig, scaled_profile
from repro.sim.trace import instrument_network


def main() -> None:
    profile = scaled_profile(MIRAGE, 20)
    topology = profile.topology(seed=11)
    config = SimConfig(protocol="4b", seed=4, duration_s=300.0, warmup_s=100.0)
    network = CollectionNetwork(topology, config, profile=profile)
    tracer = instrument_network(network)
    result = network.run()

    print(result.summary_row())
    print()
    print("--- parent changes (route dynamics) ---")
    print(tracer.render(kind="parent-change", limit=30))
    print()

    by_node = Counter(r.node for r in tracer.filter(kind="tx"))
    busiest, tx_count = by_node.most_common(1)[0]
    unacked = sum(1 for r in tracer.filter(kind="tx", node=busiest) if "ack=0" in r.detail)
    print(f"--- busiest transmitter: node {busiest} ({tx_count} unicasts, {unacked} unacked) ---")
    print(tracer.render(kind="tx", node=busiest, limit=10))
    print()

    print(f"--- estimator table of node {busiest} ---")
    for row in network.nodes[busiest].estimator.table_snapshot():
        prr_in = f"{row['prr_in']:.2f}" if row["prr_in"] is not None else "  — "
        etx = f"{row['etx']:.2f}" if row["mature"] else " inf"
        pin = "PIN" if row["pinned"] else "   "
        print(f"  nbr {row['addr']:>3}  {pin}  etx={etx}  prr_in={prr_in}")


if __name__ == "__main__":
    main()
