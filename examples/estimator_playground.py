#!/usr/bin/env python3
"""Watch the hybrid estimator track a scripted link, knob by knob.

Drives a single 4B estimator over a trace-driven link whose PRR follows a
script (good → collapse → recovery) and prints the estimate after every
data window for several configurations — the agility-vs-stability
trade-off behind the paper's ku/kb/alpha choices.

Usage:
    python examples/estimator_playground.py
"""

import random

from repro.analysis import timeseries
from repro.core.estimator import EstimatorConfig, HybridLinkEstimator
from repro.link.frame import BROADCAST, NetworkFrame
from repro.link.mac import Mac
from repro.phy.radio import Radio
from repro.phy.trace_link import LinkTrace, TraceMedium
from repro.sim.engine import Engine
from repro.sim.rng import RngManager

ME, NEIGHBOR = 0, 1

#: PRR script: 60 s good, 60 s collapsed, 60 s recovered.
SCRIPT = LinkTrace([(0.0, 0.95), (60.0, 0.25), (120.0, 0.95)])


def run_config(label: str, config: EstimatorConfig):
    engine = Engine()
    rng = RngManager(7)
    medium = TraceMedium(engine, rng)
    macs = {}
    for nid in (ME, NEIGHBOR):
        mac = Mac(engine, medium, Radio(node_id=nid), rng.stream("mac", nid))
        medium.attach(mac)
        macs[nid] = mac
    medium.set_symmetric_link(ME, NEIGHBOR, SCRIPT)
    estimator = HybridLinkEstimator(macs[ME], config, rng.stream("est"))

    # Neighbor beacons once per 10 s (bootstraps the estimate)...
    def neighbor_beacon():
        wrapped_payload = NetworkFrame(src=NEIGHBOR, dst=BROADCAST, length_bytes=16)
        from repro.link.frame import le_wrap

        neighbor_seq[0] = (neighbor_seq[0] + 1) % 256
        macs[NEIGHBOR].send(le_wrap(wrapped_payload, le_seq=neighbor_seq[0]))
        engine.schedule(10.0, neighbor_beacon)

    neighbor_seq = [0]
    engine.schedule(0.1, neighbor_beacon)

    # ...while we push data at 2 packets/s and sample the estimate.
    series = []

    def send_data():
        estimator.send(NetworkFrame(src=ME, dst=NEIGHBOR, length_bytes=30))
        quality = estimator.link_quality(NEIGHBOR)
        if quality != float("inf"):
            series.append((engine.now, min(quality, 12.0)))
        engine.schedule(0.5, send_data)

    engine.schedule(1.0, send_data)
    engine.run_until(180.0)
    return label, series


def main() -> None:
    configs = {
        "4B defaults (ku=5, a=0.5)": EstimatorConfig(),
        "sluggish (ku=25, a=0.9)": EstimatorConfig(ku=25, alpha_outer=0.9),
        "jumpy (ku=1, a=0.1)": EstimatorConfig(ku=1, alpha_outer=0.1),
    }
    results = dict(run_config(label, config) for label, config in configs.items())
    print(
        timeseries(
            results,
            title="hybrid ETX tracking a scripted PRR (0.95 -> 0.25 @60s -> 0.95 @120s)",
            ylabel="estimated ETX (clipped at 12)",
            height=16,
        )
    )
    print()
    print("True ETX: ~1.05 in the good phases, ~4 during the collapse.")
    print("Defaults react within a few windows and settle without ringing;")
    print("the sluggish config lags the collapse, the jumpy one never settles.")


if __name__ == "__main__":
    main()
