#!/usr/bin/env python3
"""Figures 7 and 8 at full scale: transmit-power sweep.

Runs 4B and MultiHopLQI at 0 / −10 / −20 dBm on the Mirage-like testbed,
reporting cost & depth (Figure 7) and per-node delivery distributions
(Figure 8) from the same set of runs.

Usage:
    python examples/power_sweep.py [--quick] [--workers 4] [--no-cache]
"""

import argparse

from repro.experiments.common import BENCH_SCALE, FULL_SCALE
from repro.experiments.fig7_power_sweep import run as run_fig7
from repro.experiments.fig8_delivery import run as run_fig8
from repro.runner import ExperimentRunner, ResultCache


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true")
    parser.add_argument("--workers", type=int, default=1, help="process count (1 = serial)")
    parser.add_argument("--no-cache", action="store_true", help="disable the result cache")
    parser.add_argument(
        "--cache-dir", default=None, help="result cache location (default: .repro-cache)"
    )
    args = parser.parse_args()
    if args.quick:
        scale, powers = BENCH_SCALE, (0.0, -10.0)
    else:
        scale, powers = FULL_SCALE, (0.0, -10.0, -20.0)
    runner = ExperimentRunner(
        workers=args.workers,
        cache=None if args.no_cache else ResultCache(args.cache_dir),
        progress=True,
    )
    sweep = run_fig7(scale, powers=powers, runner=runner)
    print(sweep.render())
    print()
    delivery = run_fig8(scale, powers=powers, sweep=sweep, runner=runner)
    print(delivery.render())
    print()
    print(f"4B wins on cost at every power: {sweep.fourbit_wins_everywhere()}")
    print(runner.totals.summary())


if __name__ == "__main__":
    main()
