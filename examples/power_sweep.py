#!/usr/bin/env python3
"""Figures 7 and 8 at full scale: transmit-power sweep.

Runs 4B and MultiHopLQI at 0 / −10 / −20 dBm on the Mirage-like testbed,
reporting cost & depth (Figure 7) and per-node delivery distributions
(Figure 8) from the same set of runs.

Usage:
    python examples/power_sweep.py [--quick]
"""

import argparse

from repro.experiments.common import BENCH_SCALE, FULL_SCALE
from repro.experiments.fig7_power_sweep import run as run_fig7
from repro.experiments.fig8_delivery import run as run_fig8


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true")
    args = parser.parse_args()
    if args.quick:
        scale, powers = BENCH_SCALE, (0.0, -10.0)
    else:
        scale, powers = FULL_SCALE, (0.0, -10.0, -20.0)
    sweep = run_fig7(scale, powers=powers)
    print(sweep.render())
    print()
    delivery = run_fig8(scale, powers=powers, sweep=sweep)
    print(delivery.render())
    print()
    print(f"4B wins on cost at every power: {sweep.fourbit_wins_everywhere()}")


if __name__ == "__main__":
    main()
