#!/usr/bin/env python3
"""Figure 6 at full scale: the link-estimation design space.

Sweeps CTP's estimator from the stock broadcast-probe design through each
of the paper's additions (ack bit; white+compare bits; all four) and plots
every variant with MultiHopLQI in the cost-vs-depth plane.

Usage:
    python examples/design_space.py [--quick]
"""

import argparse

from repro.experiments.common import BENCH_SCALE, FULL_SCALE
from repro.experiments.fig6_design_space import run


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="reduced scale")
    args = parser.parse_args()
    result = run(BENCH_SCALE if args.quick else FULL_SCALE)
    print(result.render())
    print()
    print(f"ack bit reduces cost:         {result.ack_bit_helps()}")
    print(f"white/compare reduce cost:    {result.white_compare_helps()}")
    print(f"4B beats MultiHopLQI:         {result.fourbit_beats_mhlqi()}")
    print(f"4B is the best variant:       {result.fourbit_best()}")


if __name__ == "__main__":
    main()
