#!/usr/bin/env python3
"""The paper's headline numbers: 4B vs MultiHopLQI on both testbeds.

Paper: 4B reduces packet delivery cost by 29% on Mirage (delivery 99.9%
vs 93%) and by 44% on Tutornet (99% vs 85%) — with the noisier testbed
showing the larger gap.

Usage:
    python examples/headline_comparison.py [--quick]
"""

import argparse

from repro.experiments.common import BENCH_SCALE, FULL_SCALE
from repro.experiments.headline import run


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true")
    args = parser.parse_args()
    result = run(BENCH_SCALE if args.quick else FULL_SCALE)
    print(result.render())
    print()
    for testbed in ("mirage", "tutornet"):
        print(f"4B wins on {testbed}: {result.fourbit_wins(testbed)}")
    print(f"gap larger on the noisier testbed: {result.gap_larger_on_noisier_testbed()}")


if __name__ == "__main__":
    main()
