#!/usr/bin/env python3
"""Figure 3: a PRR collapse the physical layer cannot see.

Runs MultiHopLQI on a chain topology while a burst interferer near the
parent destroys ~40% of packets during a known window.  The PRR of the
link collapses; the LQI of the packets that *do* arrive stays saturated;
the cumulative count of unacknowledged transmissions inflects — and the
protocol, reading only LQI, never reroutes.

Pass ``--protocol 4b`` to watch the ack bit catch what LQI cannot.

Usage:
    python examples/lqi_blindness.py [--protocol mhlqi|4b] [--quick]
"""

import argparse

from repro.experiments.fig3_lqi_blind import Fig3Settings, run


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--protocol", choices=("mhlqi", "4b"), default="mhlqi")
    parser.add_argument("--quick", action="store_true")
    args = parser.parse_args()
    if args.quick:
        settings = Fig3Settings(duration_s=600.0, burst_window=(200.0, 400.0), protocol=args.protocol)
    else:
        settings = Fig3Settings(protocol=args.protocol)
    result = run(settings)
    print(result.render())
    print()
    print(f"delivery ratio: {result.delivery_ratio * 100:.1f}%   cost: {result.cost:.2f}")
    if args.protocol == "mhlqi":
        print(f"physical-layer blindness reproduced: {result.blindness_holds()}")


if __name__ == "__main__":
    main()
