#!/usr/bin/env python3
"""Quickstart: run the 4B link estimator under CTP on a simulated testbed.

Builds a 30-node network with a Mirage-like channel (shadowing, temporal
fading, bimodal deep fades, burst interference), runs a 10-minute
collection workload, and prints the paper's three metrics plus the final
routing tree.

Usage:
    python examples/quickstart.py [--protocol 4b] [--seed 1] [--minutes 10]
"""

import argparse

from repro import PROTOCOLS, CollectionNetwork, MIRAGE, SimConfig, scaled_profile
from repro.analysis import routing_tree


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--protocol", choices=PROTOCOLS, default="4b")
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--minutes", type=float, default=10.0)
    parser.add_argument("--nodes", type=int, default=30)
    args = parser.parse_args()

    profile = scaled_profile(MIRAGE, args.nodes)
    topology = profile.topology(seed=11)
    config = SimConfig(
        protocol=args.protocol,
        seed=args.seed,
        duration_s=args.minutes * 60.0,
        warmup_s=min(120.0, args.minutes * 20.0),
    )
    print(f"Simulating {topology.size} nodes for {args.minutes:.0f} min with {args.protocol!r}...")
    network = CollectionNetwork(topology, config, profile=profile)
    result = network.run()

    print()
    print(result.summary_row())
    print(f"  mean hops per delivered packet: {result.mean_packet_hops:.2f}")
    print(f"  end-to-end latency mean / p95:  {result.latency_mean_s * 1000:.1f} / "
          f"{result.latency_p95_s * 1000:.1f} ms")
    print(f"  duplicates at root:             {result.duplicates_at_root}")
    print(f"  routing beacons sent:           {result.beacons_sent}")
    print()
    print(
        routing_tree(
            result.final_parents,
            result.final_depths,
            root=topology.sink,
            title="final routing tree:",
        )
    )


if __name__ == "__main__":
    main()
