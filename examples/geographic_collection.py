#!/usr/bin/env python3
"""A different network layer, the same four bits.

Runs greedy geographic routing — beacons carry positions, the compare bit
means "closer to the sink", the pin bit protects the next hop — over the
*unchanged* 4B link estimator, next to CTP on the same topology and
channel.  Section 2.3 of the paper argues the estimator should be reusable
across network layers; this example is that claim, executed.

Usage:
    python examples/geographic_collection.py [--minutes 10]
"""

import argparse

from repro import CollectionNetwork, MIRAGE, SimConfig, scaled_profile
from repro.analysis import table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--minutes", type=float, default=10.0)
    parser.add_argument("--nodes", type=int, default=40)
    args = parser.parse_args()

    profile = scaled_profile(MIRAGE, args.nodes)
    topo = profile.topology(seed=11)
    rows = []
    for protocol, label in (("4b", "CTP + 4B (path ETX)"), ("geo", "greedy geographic + 4B")):
        config = SimConfig(
            protocol=protocol,
            seed=1,
            duration_s=args.minutes * 60.0,
            warmup_s=min(180.0, args.minutes * 20.0),
        )
        result = CollectionNetwork(topo, config, profile=profile).run()
        rows.append(
            [
                label,
                f"{result.cost:.2f}",
                f"{result.avg_tree_depth:.2f}",
                f"{result.delivery_ratio * 100:.1f}%",
            ]
        )
    print(
        table(
            ["network layer", "cost", "avg depth", "delivery"],
            rows,
            title="two network layers sharing one link estimator",
        )
    )
    print()
    print("Geographic routing ignores link cost beyond a usability gate, so its")
    print("cost is a bit higher — but the estimator, table, and all four bits")
    print("are byte-for-byte the same code in both rows.")


if __name__ == "__main__":
    main()
