#!/usr/bin/env python3
"""Anycast collection to multiple basestations.

The paper's traffic model (Section 2) is collection "in anycast fashion to
one of possibly many basestations".  CTP supports this natively: every
root advertises path ETX 0 and the gradient sorts itself out.  This
example adds a second sink at the far corner of the Mirage-like testbed
and shows depth and cost dropping as traffic splits between the roots.

Usage:
    python examples/multisink_anycast.py [--minutes 10]
"""

import argparse

from repro import CollectionNetwork, MIRAGE, SimConfig, scaled_profile
from repro.analysis import table


def run(extra_sinks, minutes, nodes=40):
    profile = scaled_profile(MIRAGE, nodes)
    topo = profile.topology(seed=11)
    config = SimConfig(
        protocol="4b",
        seed=1,
        duration_s=minutes * 60.0,
        warmup_s=min(180.0, minutes * 20.0),
        extra_sinks=extra_sinks,
    )
    return CollectionNetwork(topo, config, profile=profile).run()


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--minutes", type=float, default=10.0)
    args = parser.parse_args()

    # The far-corner node is the highest id in the uniform layout scan; use
    # the node farthest from the sink instead, which is robust.
    profile = scaled_profile(MIRAGE, 40)
    topo = profile.topology(seed=11)
    far = max(topo.node_ids(), key=lambda n: topo.distance(n, topo.sink))

    single = run((), args.minutes)
    double = run((far,), args.minutes)

    print(
        table(
            ["configuration", "cost", "avg depth", "delivery"],
            [
                ["one basestation", f"{single.cost:.2f}", f"{single.avg_tree_depth:.2f}",
                 f"{single.delivery_ratio * 100:.1f}%"],
                [f"two basestations (+node {far})", f"{double.cost:.2f}",
                 f"{double.avg_tree_depth:.2f}", f"{double.delivery_ratio * 100:.1f}%"],
            ],
            title="anycast collection: adding a second sink",
        )
    )


if __name__ == "__main__":
    main()
