#!/usr/bin/env python3
"""4B on the paper's "worst case" hardware: a radio with no channel metric.

The CC1000 (Mica2) exposes no LQI, so the white bit can never be set
(Section 3.2: "In the worst case, if radio hardware provides no such
information, the white bit can never be set").  Its non-coherent FSK also
has a far wider SNR transition band — the famously gray Mica2 links.

This example runs the 4B stack on CC1000 hardware with three white-bit
derivations: the hardware-truthful "never", an SNR-threshold variant (for
radios that at least report RSSI/noise), and — counterfactually — the LQI
variant, to show how little the estimator degrades when the physical layer
goes dark: the ack bit carries the load.

Usage:
    python examples/gray_radio.py [--minutes 8]
"""

import argparse

from repro import CollectionNetwork, MIRAGE, SimConfig, scaled_profile
from repro.analysis import table
from repro.phy.radio import CC1000


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--minutes", type=float, default=8.0)
    parser.add_argument("--nodes", type=int, default=30)
    args = parser.parse_args()

    profile = scaled_profile(MIRAGE, args.nodes)
    topo = profile.topology(seed=11)
    rows = []
    for white_bit in ("never", "snr", "lqi"):
        config = SimConfig(
            protocol="4b",
            seed=1,
            duration_s=args.minutes * 60.0,
            warmup_s=min(180.0, args.minutes * 20.0),
            radio_params=CC1000,
            white_bit=white_bit,
        )
        result = CollectionNetwork(topo, config, profile=profile).run()
        rows.append(
            [
                white_bit,
                f"{result.cost:.2f}",
                f"{result.avg_tree_depth:.2f}",
                f"{result.delivery_ratio * 100:.1f}%",
            ]
        )
    print(
        table(
            ["white bit", "cost", "avg depth", "delivery"],
            rows,
            title="4B over a CC1000-class radio (19.2 kbps NC-FSK, gray links)",
        )
    )


if __name__ == "__main__":
    main()
